"""Dynamic lock-order detector: proxy units, cycles, and real components."""

import threading

import pytest

from repro.analysis.lockorder import LockOrderMonitor, _ConditionProxy, _LockProxy
from repro.backends.conformance import check_backend
from repro.cache import ProbeCache
from repro.parallel import ParallelProbeExecutor
from repro.relational.evaluator import InstrumentedEvaluator
from repro.relational.sqlite_backend import SqliteEngine


@pytest.fixture(scope="module")
def probes(products_debugger):
    mapping = products_debugger.map_keywords("saffron scented candle")
    graph = products_debugger.build_graph(products_debugger.prune(mapping))
    return [graph.node(index).query for index in range(len(graph))]


class TestProxies:
    def test_acquire_release_records_acquisitions(self):
        monitor = LockOrderMonitor()
        proxy = monitor.wrap_lock(threading.Lock(), "A")
        with proxy:
            assert list(monitor.held_now()) == ["A"]
            assert proxy.locked()
        assert list(monitor.held_now()) == []
        assert monitor.acquisitions() == {"A": 1}
        assert monitor.edges() == {}

    def test_nested_acquisition_records_edge(self):
        monitor = LockOrderMonitor()
        outer = monitor.wrap_lock(threading.Lock(), "A")
        inner = monitor.wrap_lock(threading.Lock(), "B")
        with outer:
            with inner:
                pass
        assert monitor.edges() == {("A", "B"): 1}
        assert monitor.inversions() == []

    def test_reacquiring_same_label_is_not_an_edge(self):
        monitor = LockOrderMonitor()
        lock = threading.RLock()
        proxy = monitor.wrap_lock(lock, "A")
        with proxy:
            with proxy:
                pass
        assert monitor.edges() == {}

    def test_condition_wait_drops_label_while_blocked(self):
        monitor = LockOrderMonitor()
        proxy = monitor.wrap_condition(threading.Condition(), "C")
        during_wait = []
        with proxy:
            proxy.wait_for(
                lambda: during_wait.append(list(monitor.held_now())) or True
            )
            assert list(monitor.held_now()) == ["C"]
        # The predicate ran while the label was popped: a thread blocked
        # in wait() holds nothing as far as ordering is concerned.
        assert during_wait[0] == []
        assert monitor.inversions() == []

    def test_timed_wait_repushes_label(self):
        monitor = LockOrderMonitor()
        proxy = monitor.wrap_condition(threading.Condition(), "C")
        with proxy:
            assert proxy.wait(timeout=0.01) is False
            assert list(monitor.held_now()) == ["C"]
        assert list(monitor.held_now()) == []

    def test_instrument_sniffs_condition_and_refuses_double_wrap(self):
        monitor = LockOrderMonitor()

        class Holder:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition(self._lock)

        holder = Holder()
        lock_proxy = monitor.instrument(holder, "_lock")
        cond_proxy = monitor.instrument(holder, "_cond", label="holder.cond")
        assert type(lock_proxy) is _LockProxy
        assert isinstance(cond_proxy, _ConditionProxy)
        assert cond_proxy.label == "holder.cond"
        with pytest.raises(ValueError, match="already instrumented"):
            monitor.instrument(holder, "_lock")


class TestCycleDetection:
    def seeded(self):
        monitor = LockOrderMonitor()
        a = monitor.wrap_lock(threading.Lock(), "A")
        b = monitor.wrap_lock(threading.Lock(), "B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        return monitor

    def test_both_orders_is_an_inversion(self):
        monitor = self.seeded()
        assert monitor.inversions() == [("A", "B")]
        assert monitor.cycles() == [["A", "B"]]

    def test_report_carries_conc005(self):
        report = self.seeded().report()
        assert not report.ok
        assert {d.code for d in report} == {"CONC005"}
        assert "A -> B -> A" in report.render()

    def test_assert_clean_raises_on_cycle(self):
        with pytest.raises(AssertionError, match="CONC005"):
            self.seeded().assert_clean()

    def test_three_way_cycle_found_once(self):
        monitor = LockOrderMonitor()
        locks = {name: monitor.wrap_lock(threading.Lock(), name) for name in "ABC"}
        for outer, inner in (("A", "B"), ("B", "C"), ("C", "A")):
            with locks[outer]:
                with locks[inner]:
                    pass
        assert monitor.inversions() == []  # no 2-cycle ...
        assert monitor.cycles() == [["A", "B", "C"]]  # ... but a 3-cycle

    def test_cross_thread_orders_merge_into_one_graph(self):
        monitor = LockOrderMonitor()
        a = monitor.wrap_lock(threading.Lock(), "A")
        b = monitor.wrap_lock(threading.Lock(), "B")

        def first():
            with a:
                with b:
                    pass

        def second():
            with b:
                with a:
                    pass

        for target in (first, second):
            thread = threading.Thread(target=target)
            thread.start()
            thread.join()
        assert monitor.inversions() == [("A", "B")]


class TestRealComponents:
    def test_sqlite_conformance_under_monitor(self, products_db, probes):
        monitor = LockOrderMonitor()
        checks = check_backend(
            "sqlite", products_db, probes[:12], lock_monitor=monitor
        )
        assert checks["probes"] == 12
        assert checks["concurrent"] > 0
        # The pool condition was actually exercised by the storm ...
        assert monitor.acquisitions().get("backend.pool", 0) > 0
        # ... and no ordering cycle was observed anywhere in the run.
        monitor.assert_clean()

    def test_parallel_probe_path_is_order_clean(
        self, products_db, probes, tmp_path
    ):
        monitor = LockOrderMonitor()
        cache = ProbeCache(tmp_path / "probes.sqlite", products_db)
        with SqliteEngine(products_db, pool_size=3) as engine:
            monitor.instrument(engine._pool, "_available", "pool.available")
            monitor.instrument(engine._pool, "_lock", "pool.lock")
            evaluator = InstrumentedEvaluator(engine, probe_cache=cache)
            monitor.instrument(evaluator, "_lock", "evaluator.l1")
            monitor.instrument(cache, "_lock", "cache.l2")
            with ParallelProbeExecutor(workers=6) as executor:
                batch = evaluator.probe_many(probes * 3, executor=executor)
        cache.close()
        assert len(batch.results) == len(probes) * 3
        # Every monitored lock participated, and the combined evaluator /
        # L2-cache / pool path never nested two of them in both orders.
        held = monitor.acquisitions()
        assert held.get("evaluator.l1", 0) > 0
        assert held.get("pool.available", 0) > 0
        monitor.assert_clean()
