"""Unit and integration tests for the observability layer (repro.obs).

Covers the :class:`ProbeBudget` accounting contract, the
:class:`ProbeTracer` ring buffer + JSON-lines schema, and the anytime
semantics of budgeted traversals and sessions: a budgeted run never
executes more probes than allowed, and everything it *does* classify is
exactly what the unbudgeted run reports.
"""

import json

import pytest

from repro.core.debugger import NonAnswerDebugger
from repro.core.session import DebugSession
from repro.core.status import Status
from repro.core.traversal import get_strategy
from repro.obs import (
    ProbeBudget,
    ProbeBudgetExhausted,
    ProbeTracer,
    TraceValidationError,
    validate_trace_file,
    validate_trace_record,
)
from repro.obs.trace import validate_trace_lines

ALL_STRATEGIES = ("bu", "td", "buwr", "tdwr", "sbh")


class TestProbeBudget:
    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            ProbeBudget(max_queries=-1)
        with pytest.raises(ValueError):
            ProbeBudget(max_simulated_seconds=-0.5)
        with pytest.raises(ValueError):
            ProbeBudget(max_wall_seconds=-1.0)

    def test_unlimited_never_refuses(self):
        budget = ProbeBudget()
        assert budget.unlimited
        for _ in range(100):
            budget.admit()
            budget.charge()
        assert not budget.exhausted
        assert not budget.bound
        assert budget.remaining_queries() is None
        assert budget.describe() == "unlimited"

    def test_admit_refuses_at_cap_and_counts_denials(self):
        budget = ProbeBudget(max_queries=2)
        budget.admit()
        budget.charge()
        budget.admit()
        budget.charge()
        assert budget.exhausted and not budget.bound
        with pytest.raises(ProbeBudgetExhausted) as info:
            budget.admit()
        assert info.value.budget is budget
        assert budget.bound and budget.denied == 1
        assert budget.remaining_queries() == 0

    def test_wall_deadline(self):
        budget = ProbeBudget(max_wall_seconds=1.0)
        budget.admit()
        budget.charge(wall_seconds=1.5)
        with pytest.raises(ProbeBudgetExhausted):
            budget.admit()

    def test_zero_query_budget_refuses_immediately(self):
        budget = ProbeBudget(max_queries=0)
        with pytest.raises(ProbeBudgetExhausted):
            budget.admit()

    def test_reset_restores_headroom(self):
        budget = ProbeBudget(max_queries=1, max_simulated_seconds=2.0)
        budget.admit()
        budget.charge(simulated_seconds=3.0)
        with pytest.raises(ProbeBudgetExhausted):
            budget.admit()
        budget.reset()
        assert not budget.exhausted and not budget.bound
        budget.admit()  # does not raise

    def test_describe_lists_active_axes(self):
        budget = ProbeBudget(max_queries=5, max_simulated_seconds=1.0)
        budget.charge(queries=2, simulated_seconds=0.25)
        text = str(budget)
        assert "2/5 queries" in text
        assert "0.250/1.000 s simulated" in text
        assert "wall" not in text


class TestProbeTracer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ProbeTracer(capacity=0)

    def span(self, tracer, level=1, cache_hit=False, alive=True):
        return tracer.record_probe(
            level=level,
            keywords=("candle",),
            backend="FakeBackend",
            alive=alive,
            cache_hit=cache_hit,
            wall_seconds=0.01,
            simulated_seconds=1.0,
        )

    def test_ring_buffer_drops_oldest(self):
        tracer = ProbeTracer(capacity=3)
        for index in range(5):
            tracer.record_event(f"event-{index}")
        assert len(tracer.records) == 3
        assert tracer.dropped == 2
        assert [event.name for event in tracer.events] == [
            "event-2",
            "event-3",
            "event-4",
        ]

    def test_clear(self):
        tracer = ProbeTracer(capacity=2)
        for _ in range(4):
            self.span(tracer)
        tracer.clear()
        assert tracer.records == [] and tracer.dropped == 0
        assert self.span(tracer).seq == 0

    def test_context_stamps_strategy_on_spans(self):
        tracer = ProbeTracer()
        self.span(tracer)
        tracer.set_context(strategy="buwr")
        self.span(tracer)
        tracer.set_context(strategy=None)
        self.span(tracer)
        assert [span.strategy for span in tracer.spans] == [None, "buwr", None]

    def test_counts_split_cache_hits_from_executions(self):
        tracer = ProbeTracer()
        self.span(tracer, cache_hit=False)
        self.span(tracer, cache_hit=True)
        tracer.record_event("noise")
        assert tracer.span_count == 2
        assert tracer.executed_span_count == 1

    def test_aggregate_by_level_and_strategy(self):
        tracer = ProbeTracer()
        self.span(tracer, level=1)
        self.span(tracer, level=2)
        tracer.set_context(strategy="sbh")
        self.span(tracer, level=2, cache_hit=True)
        rows = tracer.aggregate("level")
        assert [row["level"] for row in rows] == [1, 2]
        assert rows[1] == {
            "level": 2,
            "probes": 2,
            "executed": 1,
            "cache_hits": 1,
            "wall_seconds": pytest.approx(0.02),
            "simulated_seconds": pytest.approx(2.0),
        }
        by_strategy = tracer.aggregate("strategy")
        assert [row["strategy"] for row in by_strategy] == ["(none)", "sbh"]
        with pytest.raises(ValueError):
            tracer.aggregate("backend")

    def test_aggregate_by_process_and_shard(self):
        tracer = ProbeTracer()
        for process_id, shard_id in ((101, 0), (101, 0), (202, 1)):
            tracer.record_probe(
                level=1,
                keywords=("candle",),
                backend="FakeBackend",
                alive=True,
                cache_hit=False,
                wall_seconds=0.01,
                simulated_seconds=1.0,
                process_id=process_id,
                shard_id=shard_id,
            )
        self.span(tracer)  # no process/shard: lands in the (none) bucket
        by_process = tracer.aggregate("process_id")
        assert [row["process_id"] for row in by_process] == ["(none)", 101, 202]
        assert [row["probes"] for row in by_process] == [1, 2, 1]
        by_shard = tracer.aggregate("shard_id")
        assert [row["shard_id"] for row in by_shard] == ["(none)", 0, 1]
        round_tripped = [span.to_dict() for span in tracer.spans]
        assert round_tripped[0]["process_id"] == 101
        assert round_tripped[0]["shard_id"] == 0
        assert "process_id" not in round_tripped[-1]

    def test_jsonl_round_trip_validates(self, tmp_path):
        tracer = ProbeTracer()
        self.span(tracer)
        tracer.record_event("traversal_end", queries_executed=1)
        counts = validate_trace_lines(tracer.to_jsonl().splitlines())
        assert counts == {"span": 1, "event": 1}
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(str(path)) == 2
        assert validate_trace_file(str(path)) == {"span": 1, "event": 1}

    def test_validation_rejects_bad_records(self):
        good = {
            "kind": "span",
            "seq": 0,
            "level": 1,
            "keywords": ["candle"],
            "backend": "b",
            "alive": True,
            "cache_hit": False,
            "wall_seconds": 0.0,
            "simulated_seconds": 0.0,
        }
        assert validate_trace_record(good) == "span"
        with pytest.raises(TraceValidationError, match="unknown record kind"):
            validate_trace_record({"kind": "metric"})
        with pytest.raises(TraceValidationError, match="missing field"):
            validate_trace_record({k: v for k, v in good.items() if k != "level"})
        with pytest.raises(TraceValidationError, match="wrong type bool"):
            validate_trace_record({**good, "level": True})
        with pytest.raises(TraceValidationError, match="must be strings"):
            validate_trace_record({**good, "keywords": [1]})
        with pytest.raises(TraceValidationError, match="not an object"):
            validate_trace_record([good])
        with pytest.raises(TraceValidationError, match="line 1: invalid JSON"):
            validate_trace_lines(["{not json"])


class TestBudgetedTraversal:
    """Anytime semantics on the DBLife snapshot (the acceptance scenario)."""

    QUERY = "Gray SIGMOD"

    def full_report(self, dblife_debugger, strategy):
        return dblife_debugger.debug(self.QUERY, strategy=strategy)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_budgeted_run_is_prefix_of_unbudgeted(self, dblife_debugger, strategy):
        full = self.full_report(dblife_debugger, strategy).traversal
        total = full.stats.queries_executed
        assert total > 0
        for cap in range(total + 2):
            budget = ProbeBudget(max_queries=cap)
            partial = dblife_debugger.debug(
                self.QUERY, strategy=strategy, budget=budget
            ).traversal
            assert partial.stats.queries_executed <= cap
            assert partial.exhausted == (cap < total)
            # Everything classified matches the unbudgeted run exactly.
            assert set(partial.alive_mtns) <= set(full.alive_mtns)
            assert set(partial.dead_mtns) <= set(full.dead_mtns)
            for mtn_index, mpans in partial.mpans.items():
                assert sorted(mpans) == sorted(full.mpans[mtn_index])
            if not partial.exhausted:
                assert (
                    partial.classification_signature()
                    == full.classification_signature()
                )
            else:
                # The refused probe must have cost something: either an MTN
                # stayed unclassified, or a dead MTN's space stayed
                # unresolved and its MPAN set was (correctly) suppressed.
                assert partial.unclassified_mtns or set(partial.mpans) < set(
                    full.mpans
                )

    def test_exhausted_run_leaves_rest_possibly_alive(self, dblife_debugger):
        full = self.full_report(dblife_debugger, "buwr").traversal
        budget = ProbeBudget(max_queries=1)
        partial = dblife_debugger.debug(
            self.QUERY, strategy="buwr", budget=budget
        ).traversal
        assert partial.exhausted and budget.bound
        store = next(iter(partial.stores.values()), None)
        for mtn_index in partial.unclassified_mtns:
            if store is not None and mtn_index in partial.stores:
                assert (
                    partial.stores[mtn_index].status(mtn_index)
                    is Status.POSSIBLY_ALIVE
                )
        assert partial.classified_mtn_count < full.classified_mtn_count

    def test_trace_span_count_matches_queries_executed(self, dblife_debugger):
        tracer = ProbeTracer()
        evaluator = dblife_debugger.make_evaluator(use_cache=True, tracer=tracer)
        report = dblife_debugger.debug(self.QUERY, strategy="buwr", evaluator=evaluator)
        result = report.traversal
        assert tracer.executed_span_count == result.stats.queries_executed
        assert tracer.span_count == (
            result.stats.queries_executed + result.stats.cache_hits
        )
        names = [event.name for event in tracer.events]
        assert names[0] == "traversal_start" and names[-1] == "traversal_end"
        assert all(span.strategy == "buwr" for span in tracer.spans)
        counts = validate_trace_lines(tracer.to_jsonl().splitlines())
        assert counts["span"] == tracer.span_count

    def test_report_render_mentions_exhaustion(self, products_debugger):
        budget = ProbeBudget(max_queries=1)
        report = products_debugger.debug("saffron scented candle", budget=budget)
        assert report.exhausted
        assert "probe budget exhausted" in report.render()


class TestBudgetedSession:
    def test_classify_degrades_to_possibly_alive(self, products_debugger):
        with DebugSession(
            products_debugger,
            "saffron scented candle",
            budget=ProbeBudget(max_queries=0),
        ) as session:
            statuses = {
                session.classify(i) for i in range(len(session.overview()))
            }
            # Base-level seeding costs nothing, so some may be known already;
            # nothing beyond that can be learned with a zero budget.
            assert session.exhausted or statuses <= {Status.ALIVE, Status.DEAD}
            assert (
                "budget exhausted" in session.progress()
                or not session.exhausted
            )

    def test_explain_does_not_cache_partial_result(self, products_debugger):
        with DebugSession(
            products_debugger, "saffron scented candle"
        ) as unbudgeted:
            full = unbudgeted.explain_all()
            dead_positions = [pos for pos, mpans in full.items() if mpans]
            assert dead_positions
            position = dead_positions[0]

            budget = ProbeBudget(max_queries=1)
            with DebugSession(
                products_debugger, "saffron scented candle", budget=budget
            ) as session:
                first = session.explain(position)
                if session.exhausted:
                    assert first == []
                    # A fresh budget resumes from the shared store, nothing
                    # was falsely remembered as explained.
                    budget.reset()
                    budget.max_queries = None
                    session.exhausted = False
                queries = session.explain(position)
                assert [q.describe() for q in queries] == [
                    q.describe() for q in unbudgeted.explain(position)
                ]

    def test_explain_all_reports_only_completed_explanations(
        self, products_debugger
    ):
        with DebugSession(
            products_debugger, "saffron scented candle"
        ) as unbudgeted:
            full = unbudgeted.explain_all()
        with DebugSession(
            products_debugger,
            "saffron scented candle",
            budget=ProbeBudget(max_queries=2),
        ) as session:
            partial = session.explain_all()
        assert set(partial) <= set(full)
        for position, mpans in partial.items():
            assert [q.describe() for q in mpans] == [
                q.describe() for q in full[position]
            ]


class TestStrategySafetyNet:
    def test_run_catches_unhandled_exhaustion(self, products_debugger):
        """A strategy that lets the exception escape still yields a result."""

        class Leaky(type(get_strategy("buwr"))):
            name = "leaky"

            def _run(self, graph, evaluator, database, result, executor=None):
                raise ProbeBudgetExhausted(ProbeBudget(max_queries=0))

        report = products_debugger.debug("saffron scented candle", strategy=Leaky())
        assert report.traversal.exhausted
        assert report.traversal.classified_mtn_count == 0
