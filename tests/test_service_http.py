"""Tests for the HTTP layer: in-process routing plus a live socket."""

import json

import pytest

from repro.core.debugger import NonAnswerDebugger
from repro.service import ServiceApp, ServiceServer, SessionManager
from repro.service.smoke import (
    _request,
    _request_json,
    poll_session_events,
    stream_session_events,
)

QUERY = "saffron scented candle"


@pytest.fixture
def app(products_db):
    debugger = NonAnswerDebugger(products_db, max_joins=2)
    manager = SessionManager(debugger, workers=2)
    yield ServiceApp(manager)
    manager.shutdown(drain=True)


def get_json(app, method, path, params=None, body=b""):
    response = app.handle(method, path, params or {}, body)
    return response.status, json.loads(response.body.decode("utf-8"))


def submit(app, document):
    return get_json(
        app, "POST", "/sessions", body=json.dumps(document).encode("utf-8")
    )


class TestRouting:
    def test_healthz(self, app):
        status, payload = get_json(app, "GET", "/healthz")
        assert (status, payload) == (200, {"status": "ok"})

    def test_unknown_route_404(self, app):
        status, payload = get_json(app, "GET", "/nope")
        assert status == 404
        assert "no route" in payload["error"]

    def test_unknown_session_404(self, app):
        status, payload = get_json(app, "GET", "/sessions/s99")
        assert status == 404
        assert "s99" in payload["error"]

    def test_submit_returns_links(self, app):
        status, payload = submit(app, {"query": QUERY})
        assert status == 202
        assert payload["session_id"] == "s1"
        assert payload["events"] == "/sessions/s1/events"
        assert payload["stream"] == "/sessions/s1/stream"

    def test_submit_requires_query(self, app):
        for document in ({}, {"query": ""}, {"query": 3}):
            status, payload = submit(app, document)
            assert status == 400, document
            assert "query" in payload["error"]

    def test_submit_validates_optionals(self, app):
        assert submit(app, {"query": QUERY, "strategy": 7})[0] == 400
        assert submit(app, {"query": QUERY, "max_queries": "x"})[0] == 400
        assert submit(app, {"query": QUERY, "max_queries": True})[0] == 400

    def test_malformed_json_400(self, app):
        response = app.handle("POST", "/sessions", {}, b"{not json")
        assert response.status == 400

    def test_submit_after_shutdown_503(self, app):
        app.manager.shutdown(drain=True)
        status, payload = submit(app, {"query": QUERY})
        assert status == 503

    def test_mutate_validates_body(self, app):
        bad = [
            {},
            {"relation": "Item", "inserts": "nope"},
            {"relation": "Item", "deletes": ["x"]},
            {"relation": "Item", "deletes": [True]},
        ]
        for document in bad:
            status, _ = get_json(
                app,
                "POST",
                "/mutate",
                body=json.dumps(document).encode("utf-8"),
            )
            assert status == 400, document


class TestSessionEndpoints:
    def finish(self, app, document=None):
        _, payload = submit(app, document or {"query": QUERY})
        session_id = payload["session_id"]
        handle = app.manager.get(session_id)
        assert handle.wait(30)
        return session_id

    def test_describe_and_list(self, app):
        session_id = self.finish(app)
        status, payload = get_json(app, "GET", f"/sessions/{session_id}")
        assert status == 200
        assert payload["state"] == "completed"
        status, listing = get_json(app, "GET", "/sessions")
        assert [row["session_id"] for row in listing["sessions"]] == [
            session_id
        ]

    def test_events_poll_with_cursor(self, app):
        session_id = self.finish(app)
        response = app.handle(
            "GET", f"/sessions/{session_id}/events", {"after": "-1"}, b""
        )
        assert response.status == 200
        assert response.headers["X-Repro-Terminal"] == "1"
        records = [
            json.loads(line)
            for line in response.body.decode("utf-8").splitlines()
        ]
        assert records[-1]["name"] == "session_completed"
        cursor = records[2]["seq"]
        rest = app.handle(
            "GET",
            f"/sessions/{session_id}/events",
            {"after": str(cursor)},
            b"",
        )
        remaining = rest.body.decode("utf-8").splitlines()
        assert len(remaining) == len(records) - 3

    def test_stream_yields_full_log(self, app):
        session_id = self.finish(app)
        response = app.handle(
            "GET", f"/sessions/{session_id}/stream", {}, b""
        )
        assert response.status == 200
        assert response.stream is not None
        records = [
            json.loads(chunk.decode("utf-8")) for chunk in response.stream
        ]
        assert records[0]["name"] == "session_submitted"
        assert records[-1]["name"] == "session_completed"
        seqs = [record["seq"] for record in records]
        assert seqs == list(range(len(seqs)))

    def test_result_carries_paper_outputs(self, app):
        session_id = self.finish(app)
        status, payload = get_json(
            app, "GET", f"/sessions/{session_id}/result"
        )
        assert status == 200
        assert payload["answers"]
        assert payload["non_answers"]
        assert all(row["mpans"] for row in payload["non_answers"])
        assert payload["signature"]

    def test_mpans_view(self, app):
        session_id = self.finish(app)
        status, payload = get_json(
            app, "GET", f"/sessions/{session_id}/mpans"
        )
        assert status == 200
        assert payload["non_answers"]

    def test_delete_cancels(self, app):
        _, payload = submit(app, {"query": QUERY})
        session_id = payload["session_id"]
        status, described = get_json(app, "DELETE", f"/sessions/{session_id}")
        assert status == 202
        app.manager.get(session_id).wait(30)
        assert app.manager.get(session_id).state in ("cancelled", "completed")

    def test_aborted_query_reports_missing_keywords(self, app):
        session_id = self.finish(app, {"query": "saffron sofa"})
        _, payload = get_json(app, "GET", f"/sessions/{session_id}/result")
        assert payload["aborted"] is True
        assert payload["missing_keywords"] == ["sofa"]

    def test_admin_stats(self, app):
        self.finish(app)
        status, payload = get_json(app, "GET", "/admin/stats")
        assert status == 200
        assert payload["sessions_submitted"] == 1
        assert payload["sessions_by_state"] == {"completed": 1}


class TestLiveServer:
    """The acceptance path: real sockets, warm server, phase3_skipped."""

    def test_warm_replay_skips_phase3_over_http(self, products_db, tmp_path):
        debugger = NonAnswerDebugger(
            products_db, max_joins=2, cache_dir=str(tmp_path)
        )
        manager = SessionManager(debugger, workers=2)
        server = ServiceServer(ServiceApp(manager))
        server.start()
        try:
            host, port = server.host, server.port

            def run_client(use_stream):
                submitted = _request_json(
                    host, port, "POST", "/sessions", {"query": QUERY}
                )
                session_id = submitted["session_id"]
                if use_stream:
                    events = stream_session_events(host, port, session_id)
                else:
                    events = poll_session_events(host, port, session_id)
                result = _request_json(
                    host, port, "GET", f"/sessions/{session_id}/result"
                )
                executed = sum(
                    1
                    for record in events
                    if record["kind"] == "span" and not record["cache_hit"]
                )
                names = {
                    record["name"]
                    for record in events
                    if record["kind"] == "event"
                }
                return result, executed, names

            cold, cold_executed, cold_names = run_client(use_stream=True)
            warm, warm_executed, warm_names = run_client(use_stream=False)

            assert cold["state"] == warm["state"] == "completed"
            assert cold["signature"] == warm["signature"]
            assert cold_executed > 0
            # The second client hits the persisted status cache: Phase 3
            # never runs, zero backend queries, observed through HTTP.
            assert "phase3_skipped" in warm_names
            assert "phase3_skipped" not in cold_names
            assert warm_executed == 0
            assert warm["queries_executed"] == 0
        finally:
            server.stop()
            manager.shutdown(drain=True)

    def test_http_errors_over_socket(self, products_db):
        debugger = NonAnswerDebugger(products_db, max_joins=2)
        manager = SessionManager(debugger, workers=2)
        server = ServiceServer(ServiceApp(manager))
        server.start()
        try:
            status, _ = _request(
                server.host, server.port, "GET", "/sessions/s42"
            )
            assert status == 404
            status, body = _request(
                server.host, server.port, "POST", "/sessions", {"query": ""}
            )
            assert status == 400
        finally:
            server.stop()
            manager.shutdown(drain=True)

    def test_ephemeral_ports_isolate_servers(self, products_db):
        debugger = NonAnswerDebugger(products_db, max_joins=2)
        manager = SessionManager(debugger, workers=2, close_debugger=True)
        first = ServiceServer(ServiceApp(manager))
        second = ServiceServer(ServiceApp(manager))
        first.start()
        second.start()
        try:
            assert first.port != second.port
            for server in (first, second):
                status, _ = _request(
                    server.host, server.port, "GET", "/healthz"
                )
                assert status == 200
        finally:
            second.stop()
            first.stop()
            manager.shutdown(drain=True)
