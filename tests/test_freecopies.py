"""Tests for the multi-free-copy extension (beyond the paper).

The paper's single free copy per relation cannot express relationships that
route through the same relation twice -- connecting two authors through a
*shared publication* needs two ``Writes`` instances.  These tests build a
minimal bibliography database where that is the *only* connection between
two people, and check that ``free_copies=2`` finds it while the paper's
configuration correctly cannot.
"""

from __future__ import annotations

import pytest

from repro.core.debugger import NonAnswerDebugger
from repro.core.freecopies import (
    free_instance,
    free_instances,
    next_free_instance,
    normalize_free_ranks,
)
from repro.relational.database import Database
from repro.relational.jointree import (
    BoundQuery,
    JoinEdge,
    JoinTree,
    JoinTreeError,
    RelationInstance,
)
from repro.relational.schema import (
    Attribute,
    AttributeType,
    ForeignKey,
    Relation,
    SchemaGraph,
)

INT = AttributeType.INTEGER
TEXT = AttributeType.TEXT


@pytest.fixture(scope="module")
def biblio_db():
    """Person -- Writes -- Publication; alice and bob share one paper."""
    schema = SchemaGraph.build(
        relations=[
            Relation("Person", (Attribute("id", INT), Attribute("name", TEXT))),
            Relation("Publication", (Attribute("id", INT), Attribute("title", TEXT))),
            Relation(
                "Writes",
                (
                    Attribute("id", INT),
                    Attribute("person_id", INT),
                    Attribute("pub_id", INT),
                ),
            ),
        ],
        foreign_keys=[
            ForeignKey("writes_person", "Writes", "person_id", "Person", "id"),
            ForeignKey("writes_pub", "Writes", "pub_id", "Publication", "id"),
        ],
    )
    database = Database(schema)
    database.load(
        {
            "Person": [(1, "alice"), (2, "bob"), (3, "carol")],
            "Publication": [(1, "joint work"), (2, "solo work")],
            "Writes": [(1, 1, 1), (2, 2, 1), (3, 3, 2)],
        }
    )
    database.validate()
    return database


class TestFreeInstances:
    def test_rank_zero_is_the_classic_r0(self):
        assert free_instance("R", 0) == RelationInstance("R", 0)
        assert str(free_instance("R", 0)) == "R[0]"

    def test_higher_ranks_are_distinct_and_marked(self):
        f1 = free_instance("R", 1)
        assert f1.is_free
        assert f1 != RelationInstance("R", 1)  # bound slot 1
        assert str(f1) == "R[f1]"
        assert f1.alias == "r_f1"

    def test_copy_zero_cannot_be_bound(self):
        with pytest.raises(JoinTreeError):
            RelationInstance("R", 0, free=False)

    def test_free_instances_helper(self):
        assert len(free_instances("R", 3)) == 3

    def test_next_free_instance_prefix_rule(self):
        tree = JoinTree.single(free_instance("R", 0))
        assert next_free_instance(tree, "R", 2) == free_instance("R", 1)
        assert next_free_instance(tree, "R", 1) is None
        assert next_free_instance(tree, "S", 2) == free_instance("S", 0)

    def test_binding_to_extra_free_copy_rejected(self):
        tree = JoinTree.single(free_instance("R", 1))
        with pytest.raises(JoinTreeError):
            BoundQuery.from_mapping(tree, {free_instance("R", 1): "kw"})


class TestNormalization:
    def _path(self, biblio_db, left_rank, right_rank):
        """P1{alice} - W[left] - Pub[f0] - W[right] - P2{bob}."""
        schema = biblio_db.schema
        alice = RelationInstance("Person", 1)
        bob = RelationInstance("Person", 2)
        pub = free_instance("Publication", 0)
        w_left = free_instance("Writes", left_rank)
        w_right = free_instance("Writes", right_rank)
        wp = schema.foreign_key("writes_person")
        wb = schema.foreign_key("writes_pub")
        tree = JoinTree(
            frozenset([alice, bob, pub, w_left, w_right]),
            frozenset(
                [
                    JoinEdge.from_fk(wp, w_left, alice),
                    JoinEdge.from_fk(wb, w_left, pub),
                    JoinEdge.from_fk(wp, w_right, bob),
                    JoinEdge.from_fk(wb, w_right, pub),
                ]
            ),
        )
        return BoundQuery.from_mapping(tree, {alice: "alice", bob: "bob"})

    def test_rank_permutations_normalize_identically(self, biblio_db):
        one = normalize_free_ranks(self._path(biblio_db, 0, 1))
        two = normalize_free_ranks(self._path(biblio_db, 1, 0))
        assert one == two

    def test_normalization_is_idempotent(self, biblio_db):
        query = self._path(biblio_db, 1, 0)
        once = normalize_free_ranks(query)
        assert normalize_free_ranks(once) == once

    def test_single_free_copy_is_identity(self, products_debugger):
        report = products_debugger.debug("saffron scented candle")
        for node in report.graph.nodes:
            assert normalize_free_ranks(node.query) == node.query


class TestEndToEnd:
    def test_paper_configuration_cannot_connect(self, biblio_db):
        """With one free Writes, 'alice bob' finds no answers.

        The only candidate networks route both people through the *same*
        ``Writes`` instance (``W0.person_id`` equal to both ids), which is
        dead unless one person's name carries both keywords.  The shared
        publication is out of reach.
        """
        debugger = NonAnswerDebugger(biblio_db, max_joins=4, use_lattice=False)
        report = debugger.debug("alice bob")
        assert not report.answers()
        for mtn in report.graph.mtns():
            writes = [
                i for i in mtn.tree.instances if i.relation == "Writes"
            ]
            assert len(writes) <= 1

    def test_two_free_copies_find_the_shared_paper(self, biblio_db):
        debugger = NonAnswerDebugger(
            biblio_db, max_joins=4, use_lattice=False, free_copies=2
        )
        report = debugger.debug("alice bob")
        assert report.mtn_count > 0
        answers = report.answers()
        assert answers, "alice and bob share a publication"
        answer = answers[0]
        writes = [
            instance
            for instance in answer.tree.instances
            if instance.relation == "Writes"
        ]
        assert len(writes) == 2 and all(w.is_free for w in writes)

    def test_no_semantic_duplicates_in_graph(self, biblio_db):
        """Rank-permuted twins must collapse to single exploration nodes."""
        debugger = NonAnswerDebugger(
            biblio_db, max_joins=4, use_lattice=False, free_copies=2
        )
        report = debugger.debug("alice bob")
        descriptions = [node.query.describe() for node in report.graph.nodes]
        assert len(descriptions) == len(set(descriptions))

    def test_dead_pair_still_explained(self, biblio_db):
        """alice and carol share nothing: dead, with sensible MPANs."""
        debugger = NonAnswerDebugger(
            biblio_db, max_joins=4, use_lattice=False, free_copies=2
        )
        report = debugger.debug("alice carol")
        assert report.mtn_count > 0
        assert not report.answers()
        for _, mpans in report.explanations():
            assert mpans

    def test_strategies_agree_with_free_copies(self, biblio_db):
        signatures = set()
        for name in ("bu", "td", "buwr", "tdwr", "sbh"):
            debugger = NonAnswerDebugger(
                biblio_db, max_joins=4, use_lattice=False, free_copies=2,
                strategy=name,
            )
            report = debugger.debug("alice bob")
            signatures.add(report.traversal.classification_signature())
        assert len(signatures) == 1

    def test_lattice_mode_rejects_multi_free(self, biblio_db):
        from repro.core.binding import BindingError, KeywordBinder
        from repro.core.lattice import generate_lattice

        lattice = generate_lattice(biblio_db.schema, 2)
        with pytest.raises(BindingError):
            KeywordBinder(lattice=lattice, free_copies=2)
