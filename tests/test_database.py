"""Unit tests for the database container and integrity checking."""

import pytest

from repro.relational.database import Database, IntegrityError
from repro.relational.schema import (
    Attribute,
    AttributeType,
    ForeignKey,
    Relation,
    SchemaError,
    SchemaGraph,
)

INT = AttributeType.INTEGER
TEXT = AttributeType.TEXT


@pytest.fixture
def schema():
    relations = [
        Relation("R", (Attribute("id", INT), Attribute("name", TEXT))),
        Relation("S", (Attribute("id", INT), Attribute("r_id", INT))),
    ]
    return SchemaGraph.build(relations, [ForeignKey("s_r", "S", "r_id", "R", "id")])


class TestDatabase:
    def test_requires_frozen_schema(self):
        graph = SchemaGraph()
        graph.add_relation(Relation("R", (Attribute("id", INT),)))
        with pytest.raises(SchemaError):
            Database(graph)

    def test_load_and_len(self, schema):
        db = Database(schema)
        db.load({"R": [(1, "a"), (2, "b")], "S": [(1, 1)]})
        assert len(db) == 3
        assert len(db.table("R")) == 2

    def test_insert_dict(self, schema):
        db = Database(schema)
        db.insert_dict("R", {"id": 1, "name": "a"})
        assert db.table("R").row(0) == (1, "a")

    def test_unknown_table(self, schema):
        with pytest.raises(SchemaError):
            Database(schema).table("nope")

    def test_validate_passes(self, schema):
        db = Database(schema)
        db.load({"R": [(1, "a")], "S": [(1, 1), (2, None)]})
        db.validate()

    def test_validate_reports_violation(self, schema):
        db = Database(schema)
        db.load({"R": [(1, "a")], "S": [(1, 99)]})
        with pytest.raises(IntegrityError, match="s_r"):
            db.validate()

    def test_cardinalities_and_summary(self, schema):
        db = Database(schema)
        db.load({"R": [(1, "a")]})
        assert db.cardinalities() == {"R": 1, "S": 0}
        assert "R" in db.summary()

    def test_iter_tables_sorted(self, schema):
        db = Database(schema)
        names = [table.relation.name for table in db.iter_tables()]
        assert names == ["R", "S"]


class TestProductsDatabase:
    def test_figure2_contents(self, products_db):
        assert len(products_db) == 15
        assert len(products_db.table("Item")) == 4
        assert products_db.table("Color").value(3, "name") == "saffron"

    def test_figure2_null_color(self, products_db):
        # Item 1 ("saffron scented oil") has color NA in Figure 2.
        assert products_db.table("Item").value(0, "color") is None

    def test_integrity(self, products_db):
        products_db.validate()


class TestDBLifeDatabase:
    def test_fourteen_tables(self, dblife_db):
        assert len(dblife_db.tables) == 14

    def test_entity_tables_have_text(self, dblife_db):
        for name in ("Person", "Publication", "Conference", "Organization", "Topic"):
            assert dblife_db.schema.relation(name).text_attributes

    def test_relationship_tables_have_no_text(self, dblife_db):
        for name in ("Writes", "Coauthor", "Affiliation", "ServesOn", "GaveTalk",
                     "GaveTutorial", "WorksOn", "PublishedIn", "About"):
            assert not dblife_db.schema.relation(name).text_attributes

    def test_deterministic(self, dblife_db):
        from repro.datasets.dblife import DBLifeConfig, dblife_database

        other = dblife_database(DBLifeConfig(seed=42, scale=1))
        assert other.cardinalities() == dblife_db.cardinalities()
        assert list(other.table("Person")) == list(dblife_db.table("Person"))

    def test_scale_grows_data(self, dblife_db):
        from repro.datasets.dblife import DBLifeConfig, dblife_database

        bigger = dblife_database(DBLifeConfig(seed=42, scale=2))
        assert len(bigger) > len(dblife_db)

    def test_integrity(self, dblife_db):
        dblife_db.validate()
