"""Tests for the multi-tenant session manager (service core)."""

import json
import threading
import time

import pytest

from repro.core.debugger import NonAnswerDebugger
from repro.obs import check_trace_file
from repro.parallel import SimulatedLatencyBackend
from repro.service.manager import (
    CANCELLED,
    COMPLETED,
    FAILED,
    ServiceClosed,
    SessionManager,
    UnknownSession,
)

QUERY = "saffron scented candle"
#: Queries with distinct cache footprints for the multi-tenant property
#: tests; "saffron sofa" aborts in Phase 1 (missing keyword).
WORKLOAD = [QUERY, "red candle", "saffron sofa", QUERY, "red candle"]


def make_manager(products_db, workers=2, latency=0.0, **kwargs):
    debugger = NonAnswerDebugger(products_db, max_joins=2)
    if latency:
        debugger.backend = SimulatedLatencyBackend(
            debugger.backend, latency=latency
        )
    return SessionManager(debugger, workers=workers, **kwargs)


def outcome(handle):
    """A session's result with its identity stripped, for comparisons."""
    payload = handle.result_payload()
    payload.pop("session_id", None)
    return payload


class TestLifecycle:
    def test_submit_completes_with_report(self, products_db):
        with make_manager(products_db) as manager:
            handle = manager.submit(QUERY)
            assert handle.wait(30)
            assert handle.state == COMPLETED
            assert handle.report is not None
            assert handle.report.non_answers()

    def test_session_ids_are_deterministic(self, products_db):
        with make_manager(products_db) as manager:
            first = manager.submit(QUERY)
            second = manager.submit(QUERY)
            assert (first.session_id, second.session_id) == ("s1", "s2")

    def test_stream_is_gap_free_and_terminal(self, products_db):
        with make_manager(products_db) as manager:
            handle = manager.submit(QUERY)
            handle.wait(30)
        records = handle.log.snapshot()
        seqs = [record["seq"] for record in records]
        assert seqs == list(range(len(records)))
        assert records[0]["name"] == "session_submitted"
        assert records[-1]["name"] == "session_completed"
        names = {
            record["name"] for record in records if record["kind"] == "event"
        }
        assert "phase_started" in names
        assert "mtn_resolved" in names

    def test_unknown_session_raises(self, products_db):
        with make_manager(products_db) as manager:
            with pytest.raises(UnknownSession):
                manager.get("s99")

    def test_failed_session_reports_error(self, products_db):
        with make_manager(products_db) as manager:
            handle = manager.submit(QUERY, strategy="not-a-strategy")
            handle.wait(30)
            assert handle.state == FAILED
            assert "not-a-strategy" in (handle.error or "")
            assert handle.log.snapshot()[-1]["name"] == "session_failed"

    def test_budget_cap_marks_exhausted(self, products_db):
        with make_manager(products_db) as manager:
            handle = manager.submit(QUERY, max_queries=1)
            handle.wait(30)
            assert handle.state == COMPLETED
            assert handle.report.exhausted

    def test_submit_after_shutdown_rejected(self, products_db):
        manager = make_manager(products_db)
        manager.shutdown()
        with pytest.raises(ServiceClosed):
            manager.submit(QUERY)


class TestCancellation:
    def test_queued_session_cancelled_before_start(self, products_db):
        with make_manager(products_db, workers=1, latency=0.05) as manager:
            blocker = manager.submit(QUERY)
            queued = manager.submit(QUERY)
            manager.cancel(queued.session_id)
            assert queued.wait(30)
            assert queued.state == CANCELLED
            assert queued.report is None
            records = queued.log.snapshot()
            assert records[-1]["name"] == "session_cancelled"
            assert records[-1]["started"] is False
            blocker.wait(30)
            assert blocker.state == COMPLETED

    def test_cancel_mid_run_keeps_partial_results(self, products_db):
        with make_manager(products_db, workers=1, latency=0.2) as manager:
            handle = manager.submit(QUERY)
            deadline = time.perf_counter() + 10
            while handle.state != "running":
                assert time.perf_counter() < deadline
                time.sleep(0.005)
            manager.cancel(handle.session_id)
            assert handle.wait(30)
            assert handle.state == CANCELLED
            # The aborted budget reads as exhausted: partial results are
            # never persisted as complete.
            assert handle.report is None or handle.report.exhausted

    def test_cancel_finished_session_is_idempotent(self, products_db):
        with make_manager(products_db) as manager:
            handle = manager.submit(QUERY)
            handle.wait(30)
            manager.cancel(handle.session_id)
            assert handle.state == COMPLETED


class TestEviction:
    def test_expired_sessions_archived_not_lost(self, products_db, tmp_path):
        manager = make_manager(products_db, session_ttl=0.01)
        handle = manager.submit(QUERY)
        handle.wait(30)
        time.sleep(0.05)
        assert manager.evict_expired() == 1
        with pytest.raises(UnknownSession):
            manager.get(handle.session_id)
        export = tmp_path / "events.jsonl"
        manager.shutdown(export_path=str(export))
        records = [
            json.loads(line) for line in export.read_text().splitlines()
        ]
        assert any(
            record.get("name") == "session_evicted"
            and record.get("evicted_session") == handle.session_id
            for record in records
        )
        # The archived stream still carries the full session.
        assert any(
            record.get("name") == "session_completed"
            and record.get("session_id") == handle.session_id
            for record in records
        )
        assert check_trace_file(str(export)) == []


class TestMutation:
    """Mutations use private database copies: the write gate rebuilds
    index/mapper/backend state, which must not leak into the shared
    session-scoped fixtures."""

    def test_mutate_waits_for_active_sessions(self):
        from repro.datasets.products import product_database

        database = product_database()
        relation = list(database.schema.relations)[0]
        row = list(list(database.table(relation))[0])
        with make_manager(database, workers=1, latency=0.05) as manager:
            handle = manager.submit(QUERY)
            deadline = time.perf_counter() + 10
            while handle.state != "running":
                assert time.perf_counter() < deadline
                time.sleep(0.005)
            summary = manager.mutate(relation, inserts=[row])
            # The write gate drained the running session first.
            assert handle.state == COMPLETED
            assert summary == {
                "relation": relation,
                "inserted": 1,
                "deleted": 0,
            }

    def test_sessions_after_mutation_classify_consistently(self):
        from repro.datasets.products import product_database

        database = product_database()
        relation = list(database.schema.relations)[0]
        row = list(list(database.table(relation))[0])
        with make_manager(database) as manager:
            before = manager.submit(QUERY)
            before.wait(30)
            manager.mutate(relation, inserts=[row])
            after = manager.submit(QUERY)
            after.wait(30)
            assert after.state == COMPLETED
            mutated = [
                record
                for record in manager.tracer.records
                if record.to_dict().get("name") == "dataset_mutated"
            ]
            assert len(mutated) == 1


class TestMultiTenantCorrectness:
    """N concurrent sessions classify exactly like N serial runs."""

    def test_concurrent_equals_serial_with_shared_caches(
        self, products_db, tmp_path
    ):
        """Variant A: unbudgeted, shared L2 + status caches.

        Complete runs converge regardless of interleaving: every
        classification either comes from a probe or from a cache entry
        another complete run wrote, so signatures (though not executed-
        query counts, which depend on cache-race timing) are identical.
        """

        def run(workers, cache_dir):
            debugger = NonAnswerDebugger(
                products_db, max_joins=2, cache_dir=str(cache_dir)
            )
            with SessionManager(debugger, workers=workers) as manager:
                handles = [manager.submit(text) for text in WORKLOAD]
                assert manager.wait_all(60)
                return [
                    {
                        key: value
                        for key, value in outcome(handle).items()
                        if key not in ("queries_executed", "cache_hits")
                    }
                    for handle in handles
                ]

        serial = run(1, tmp_path / "serial")
        concurrent = run(4, tmp_path / "concurrent")
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            concurrent, sort_keys=True
        )

    def test_concurrent_equals_serial_under_budget_exhaustion(
        self, products_db
    ):
        """Variant B: every session budget-capped, no shared caches.

        Sessions are fully independent (own evaluator, own L1, own
        budget), so even executed-query counts are byte-identical
        between serial and concurrent execution.
        """

        def run(workers):
            with make_manager(products_db, workers=workers) as manager:
                handles = [
                    manager.submit(text, max_queries=2) for text in WORKLOAD
                ]
                assert manager.wait_all(60)
                assert any(
                    handle.report is not None and handle.report.exhausted
                    for handle in handles
                )
                return [outcome(handle) for handle in handles]

        serial = run(1)
        concurrent = run(4)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            concurrent, sort_keys=True
        )


class TestShutdown:
    def test_drain_finishes_queued_sessions(self, products_db):
        manager = make_manager(products_db, workers=1, latency=0.02)
        handles = [manager.submit(QUERY) for _ in range(3)]
        summary = manager.shutdown(drain=True)
        assert summary["active_sessions"] == 0
        assert summary["sessions_served"] == 3
        assert all(handle.state == COMPLETED for handle in handles)

    def test_no_drain_cancels_queued_sessions(self, products_db):
        manager = make_manager(products_db, workers=1, latency=0.2)
        handles = [manager.submit(QUERY) for _ in range(3)]
        summary = manager.shutdown(drain=False)
        assert summary["active_sessions"] == 0
        states = {handle.state for handle in handles}
        assert states <= {COMPLETED, CANCELLED}
        assert CANCELLED in states

    def test_shutdown_is_idempotent(self, products_db):
        manager = make_manager(products_db)
        manager.submit(QUERY).wait(30)
        first = manager.shutdown()
        second = manager.shutdown()
        assert first["sessions_served"] == second["sessions_served"] == 1

    def test_export_passes_trace_check(self, products_db, tmp_path):
        manager = make_manager(products_db)
        for text in (QUERY, "red candle"):
            manager.submit(text)
        export = tmp_path / "events.jsonl"
        manager.shutdown(drain=True, export_path=str(export))
        assert check_trace_file(str(export)) == []
        records = [
            json.loads(line) for line in export.read_text().splitlines()
        ]
        shutdown = [
            record
            for record in records
            if record.get("name") == "service_shutdown"
        ]
        assert len(shutdown) == 1
        assert shutdown[0]["active_sessions"] == 0
        assert shutdown[0]["sessions_served"] == 2

    def test_sqlite_backend_emits_pool_stats_on_shutdown(
        self, products_db, tmp_path
    ):
        debugger = NonAnswerDebugger(products_db, max_joins=2, backend="sqlite")
        manager = SessionManager(debugger, workers=2)
        manager.submit(QUERY).wait(30)
        export = tmp_path / "events.jsonl"
        manager.shutdown(drain=True, export_path=str(export))
        records = [
            json.loads(line) for line in export.read_text().splitlines()
        ]
        pool = [r for r in records if r.get("name") == "pool_stats"]
        assert pool, "drained shutdown must emit the final pool_stats"
        assert pool[0]["in_use"] == 0
        assert check_trace_file(str(export)) == []


class TestStats:
    def test_stats_reflect_sessions_and_pool(self, products_db):
        debugger = NonAnswerDebugger(products_db, max_joins=2, backend="sqlite")
        with SessionManager(debugger, workers=2) as manager:
            manager.submit(QUERY).wait(30)
            stats = manager.stats()
            assert stats["sessions_submitted"] == 1
            assert stats["sessions_by_state"] == {COMPLETED: 1}
            assert stats["pool"]["in_use"] == 0

    def test_stats_include_probe_cache_counters(self, products_db, tmp_path):
        debugger = NonAnswerDebugger(
            products_db, max_joins=2, cache_dir=str(tmp_path)
        )
        with SessionManager(debugger, workers=2) as manager:
            manager.submit(QUERY).wait(30)
            stats = manager.stats()
            assert stats["probe_cache"]["entries"] > 0
            assert stats["status_cache"]["workloads"] >= 1


def test_concurrent_submitters_race_cleanly(products_db):
    """Many threads submitting at once still get unique, gap-free sessions."""
    with make_manager(products_db, workers=4) as manager:
        handles = []
        lock = threading.Lock()

        def client():
            handle = manager.submit(QUERY)
            with lock:
                handles.append(handle)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert manager.wait_all(60)
        ids = {handle.session_id for handle in handles}
        assert len(ids) == 8
        for handle in handles:
            seqs = [record["seq"] for record in handle.log.snapshot()]
            assert seqs == list(range(len(seqs)))
