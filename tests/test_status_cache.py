"""Tests for the persisted StatusStore: save/load, repair, Phase-3 skip."""

from __future__ import annotations

import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import StatusCache, StatusFact, fact_survives, workload_cache_key
from repro.core.debugger import NonAnswerDebugger
from repro.core.traversal import STRATEGY_NAMES
from repro.datasets.products import product_database
from repro.obs import ProbeBudget, ProbeTracer
from repro.relational.database import MutationDirection

from tests.test_properties import SETTINGS, product_databases, random_queries

INS = MutationDirection.INSERT_ONLY
DEL = MutationDirection.DELETE_ONLY
MIX = MutationDirection.MIXED


def fact(relations, alive, key="k", evaluated=True):
    return StatusFact(
        node_key=key, relations=tuple(relations), alive=alive, evaluated=evaluated
    )


# -------------------------------------------------------------- repair rule
class TestFactSurvives:
    def test_untouched_fact_is_exact(self):
        assert fact_survives(fact(["A"], True), {"B": MIX})
        assert fact_survives(fact(["A"], False), {"B": MIX})

    def test_alive_survives_insert_only(self):
        assert fact_survives(fact(["A"], True), {"A": INS})
        assert not fact_survives(fact(["A"], False), {"A": INS})

    def test_dead_survives_delete_only(self):
        assert fact_survives(fact(["A"], False), {"A": DEL})
        assert not fact_survives(fact(["A"], True), {"A": DEL})

    def test_mixed_kills_both_polarities(self):
        assert not fact_survives(fact(["A"], True), {"A": MIX})
        assert not fact_survives(fact(["A"], False), {"A": MIX})

    def test_conflicting_directions_kill(self):
        """A join path touching one insert-only and one delete-only
        relation has no monotone guarantee in either polarity."""
        directions = {"A": INS, "B": DEL}
        assert not fact_survives(fact(["A", "B"], True), directions)
        assert not fact_survives(fact(["A", "B"], False), directions)

    def test_multiple_same_direction_relations_survive(self):
        directions = {"A": INS, "B": INS}
        assert fact_survives(fact(["A", "B"], True), directions)


class TestWorkloadKey:
    def test_token_order_and_case_insensitive(self):
        one = workload_cache_key(["Saffron", "candle"], "token", 2, 3, 1)
        two = workload_cache_key(["CANDLE", "saffron"], "token", 2, 3, 1)
        assert one == two

    def test_casefold_not_just_lower(self):
        # German sharp s: casefold maps both spellings to "strasse".
        assert workload_cache_key(["STRASSE"], "token", 2, 3, 1) == (
            workload_cache_key(["straße"], "token", 2, 3, 1)
        )

    def test_lattice_shape_is_part_of_the_key(self):
        base = workload_cache_key(["a"], "token", 2, 3, 1)
        assert workload_cache_key(["a"], "substring", 2, 3, 1) != base
        assert workload_cache_key(["a"], "token", 3, 3, 1) != base
        assert workload_cache_key(["a"], "token", 2, 4, 1) != base
        assert workload_cache_key(["a"], "token", 2, 3, 2) != base


# ------------------------------------------------------------------- store
class TestStatusCache:
    def facts(self):
        return [
            fact(["Item"], True, key="n1"),
            fact(["Item"], False, key="n2"),
            fact(["ProductType"], True, key="n3"),
        ]

    def test_save_load_exact_roundtrip(self, tmp_path):
        database = product_database()
        with StatusCache.open_dir(tmp_path, database) as cache:
            assert cache.load("w") is None
            assert cache.save("w", self.facts()) == 3
            load = cache.load("w")
        assert load.exact and load.complete and load.dropped == 0
        assert [f.node_key for f in load.facts] == ["n1", "n2", "n3"]

    def test_persists_across_reopen(self, tmp_path):
        database = product_database()
        with StatusCache.open_dir(tmp_path, database) as cache:
            cache.save("w", self.facts(), complete=False)
        with StatusCache.open_dir(tmp_path, database) as reopened:
            load = reopened.load("w")
        assert load.exact and not load.complete
        assert len(load.facts) == 3

    def test_stale_load_repairs_with_directions(self, tmp_path):
        database = product_database()
        with StatusCache.open_dir(tmp_path, database) as cache:
            cache.save("w", self.facts())
            database.insert("Item", list(database.table("Item"))[0])
            load = cache.load("w")
        assert not load.exact
        assert load.directions == {"Item": "insert_only"}
        # Alive-through-Item and untouched facts survive; dead is dropped.
        assert {f.node_key for f in load.facts} == {"n1", "n3"}
        assert load.dropped == 1

    def test_last_save_wins_per_workload(self, tmp_path):
        database = product_database()
        with StatusCache.open_dir(tmp_path, database) as cache:
            cache.save("w", self.facts())
            cache.save("w", self.facts()[:1])
            assert len(cache) == 1
            load = cache.load("w")
        assert [f.node_key for f in load.facts] == ["n1"]

    def test_clear_counts_before_delete(self, tmp_path):
        with StatusCache.open_dir(tmp_path, product_database()) as cache:
            cache.save("w", self.facts())
            assert cache.clear() == 3
            assert cache.load("w") is None


# ----------------------------------------------------------- e2e + property
class TestPhase3Skip:
    QUERY = "saffron scented candle"

    def test_skip_emits_trace_event(self, tmp_path):
        database = product_database()
        with NonAnswerDebugger(
            database, max_joins=2, cache_dir=tmp_path
        ) as debugger:
            debugger.debug(self.QUERY)
        tracer = ProbeTracer()
        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=tmp_path, tracer=tracer
        ) as warm:
            warm.debug(self.QUERY)
        events = [
            r
            for r in tracer.records
            if getattr(r, "name", None) == "phase3_skipped"
        ]
        assert len(events) == 1
        assert events[0].attrs["facts"] > 0

    def test_skip_is_strategy_independent(self, tmp_path):
        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=tmp_path
        ) as cold:
            baseline = cold.debug(self.QUERY, strategy="bu")
        for name in STRATEGY_NAMES:
            with NonAnswerDebugger(
                product_database(), max_joins=2, cache_dir=tmp_path
            ) as warm:
                report = warm.debug(self.QUERY, strategy=name)
            assert report.traversal.stats.queries_executed == 0
            assert (
                report.traversal.classification_signature()
                == baseline.traversal.classification_signature()
            )

    def test_constrained_debug_never_skips_or_saves(self, tmp_path):
        from repro.core.constraints import SearchConstraints

        constraints = SearchConstraints(exclude_relations=frozenset({"Color"}))
        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=tmp_path
        ) as debugger:
            debugger.debug(self.QUERY, constraints=constraints)
            assert debugger.status_cache.saves == 0
            debugger.debug(self.QUERY)
            assert debugger.status_cache.saves == 1
            report = debugger.debug(self.QUERY, constraints=constraints)
            assert debugger.status_cache.saves == 1  # still only the full run
        # The constrained graph was traversed for real, not skipped: its
        # probes ran (answered by the L2 tier, not implied from facts).
        assert report.traversal.stats.cache_hits > 0

    def test_budget_exhausted_run_is_not_persisted(self, tmp_path):
        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=tmp_path
        ) as debugger:
            report = debugger.debug(self.QUERY, budget=ProbeBudget(max_queries=1))
            assert report.traversal.exhausted
            assert debugger.status_cache.saves == 0


class TestMutationProperty:
    """The ISSUE's correctness bar: mutate-then-debug classifications are
    byte-identical to a cold recompute, for every strategy, across random
    insert/delete sequences, with and without budget exhaustion."""

    @SETTINGS
    @given(
        database=product_databases(),
        seed=st.integers(0, 10_000),
        mutations=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.integers(0, 7),
            ),
            min_size=1,
            max_size=4,
        ),
        cap=st.integers(0, 12),
    )
    def test_repaired_sessions_match_cold_recompute(
        self, database, seed, mutations, cap
    ):
        cache_dir = tempfile.mkdtemp()
        text = random_queries(database, seed, count=1)[0]
        with NonAnswerDebugger(
            database, max_joins=2, cache_dir=cache_dir
        ) as first:
            mapping = first.map_keywords(text)
            if not mapping.complete or not mapping.keywords:
                return
            first.debug(text)

        # A random insert/delete burst on the live database between the
        # two debug sessions.
        item = database.table("Item")
        for kind, pick in mutations:
            if kind == "insert" or len(item) == 0:
                row = (
                    len(item) + 100,
                    ("saffron", "vanilla candle", "rose oil")[pick % 3],
                    None,
                    None,
                    None,
                    1.0,
                    "scented",
                )
                database.insert("Item", row)
            else:
                database.delete("Item", pick % len(item))

        cold = NonAnswerDebugger(database, max_joins=2)
        warm = NonAnswerDebugger(database, max_joins=2, cache_dir=cache_dir)
        try:
            for name in STRATEGY_NAMES:
                cold_report = cold.debug(text, strategy=name)
                warm_report = warm.debug(text, strategy=name)
                if cold_report.traversal is None:
                    # The mutations removed a keyword from the database:
                    # both sessions must abort identically.
                    assert warm_report.traversal is None
                    return
                assert (
                    warm_report.traversal.classification_signature()
                    == cold_report.traversal.classification_signature()
                ), (text, name, mutations)
                assert sorted(warm_report.traversal.mpans.items()) == (
                    sorted(cold_report.traversal.mpans.items())
                ), (text, name, mutations)
            # Budgeted warm runs must stay sound prefixes of the cold
            # ground truth even when cache hits stretch the budget.
            reference = cold.debug(text)
            budgeted = warm.debug(text, budget=ProbeBudget(max_queries=cap))
            partial = budgeted.traversal
            full = reference.traversal
            assert set(partial.alive_mtns) <= set(full.alive_mtns)
            assert set(partial.dead_mtns) <= set(full.dead_mtns)
            for mtn_index, mpans in partial.mpans.items():
                assert sorted(mpans) == sorted(full.mpans[mtn_index])
        finally:
            cold.close()
            warm.close()
