"""Unit tests for join trees, edges, instances, and bound queries."""

import pytest

from repro.datasets.products import product_schema
from repro.relational.jointree import (
    BoundQuery,
    JoinEdge,
    JoinTree,
    JoinTreeError,
    RelationInstance,
    validate_against_schema,
)


def inst(relation, copy):
    return RelationInstance(relation, copy)


@pytest.fixture(scope="module")
def schema():
    return product_schema()


def path_tree():
    """Color[1] -- Item[0] -- ProductType[2] over the product schema."""
    color = inst("Color", 1)
    item = inst("Item", 0)
    ptype = inst("ProductType", 2)
    e1 = JoinEdge("item_color", item, "color", color, "id")
    e2 = JoinEdge("item_ptype", item, "ptype", ptype, "id")
    return JoinTree(frozenset([color, item, ptype]), frozenset([e1, e2]))


class TestRelationInstance:
    def test_free(self):
        assert inst("R", 0).is_free
        assert not inst("R", 1).is_free

    def test_negative_copy_rejected(self):
        with pytest.raises(JoinTreeError):
            inst("R", -1)

    def test_ordering(self):
        assert inst("A", 2) < inst("B", 1)
        assert inst("A", 1) < inst("A", 2)

    def test_alias_and_str(self):
        assert inst("Item", 2).alias == "item_2"
        assert str(inst("Item", 2)) == "Item[2]"


class TestJoinEdge:
    def test_normalized_endpoint_order(self):
        a, b = inst("Color", 1), inst("Item", 0)
        forward = JoinEdge("item_color", b, "color", a, "id")
        backward = JoinEdge("item_color", a, "id", b, "color")
        assert forward == backward
        assert hash(forward) == hash(backward)

    def test_self_loop_rejected(self):
        a = inst("Item", 1)
        with pytest.raises(JoinTreeError):
            JoinEdge("x", a, "id", a, "id")

    def test_other_and_column_of(self):
        a, b = inst("Color", 1), inst("Item", 0)
        edge = JoinEdge("item_color", b, "color", a, "id")
        assert edge.other(a) == b
        assert edge.column_of(a) == "id"
        assert edge.column_of(b) == "color"
        with pytest.raises(JoinTreeError):
            edge.other(inst("X", 1))

    def test_from_fk_checks_relations(self, schema):
        fk = schema.foreign_key("item_color")
        with pytest.raises(JoinTreeError):
            JoinEdge.from_fk(fk, inst("Color", 1), inst("Item", 0))


class TestJoinTree:
    def test_single(self):
        tree = JoinTree.single(inst("Item", 1))
        assert tree.size == 1
        assert tree.join_count == 0
        assert tree.leaves() == [inst("Item", 1)]

    def test_invariants(self):
        a, b = inst("Color", 1), inst("Item", 0)
        edge = JoinEdge("item_color", b, "color", a, "id")
        with pytest.raises(JoinTreeError):  # too many edges
            JoinTree(frozenset([a]), frozenset([edge]))
        with pytest.raises(JoinTreeError):  # edge endpoint missing
            JoinTree(frozenset([a, inst("X", 1)]), frozenset([edge]))
        with pytest.raises(JoinTreeError):  # empty
            JoinTree(frozenset(), frozenset())

    def test_path_shape(self):
        tree = path_tree()
        assert tree.size == 3
        assert sorted(map(str, tree.leaves())) == ["Color[1]", "ProductType[2]"]
        assert tree.degree(inst("Item", 0)) == 2

    def test_extend_and_remove_leaf_roundtrip(self, schema):
        tree = JoinTree.single(inst("Item", 0))
        fk = schema.foreign_key("item_color")
        edge = JoinEdge.from_fk(fk, inst("Item", 0), inst("Color", 1))
        extended = tree.extend(edge, inst("Color", 1))
        assert extended.size == 2
        assert extended.remove_leaf(inst("Color", 1)) == tree

    def test_extend_duplicate_instance_rejected(self, schema):
        tree = JoinTree.single(inst("Item", 0))
        fk = schema.foreign_key("item_color")
        edge = JoinEdge.from_fk(fk, inst("Item", 0), inst("Color", 1))
        extended = tree.extend(edge, inst("Color", 1))
        with pytest.raises(JoinTreeError):
            extended.extend(edge, inst("Color", 1))

    def test_remove_non_leaf_rejected(self):
        with pytest.raises(JoinTreeError):
            path_tree().remove_leaf(inst("Item", 0))

    def test_remove_only_instance_rejected(self):
        with pytest.raises(JoinTreeError):
            JoinTree.single(inst("Item", 0)).remove_leaf(inst("Item", 0))

    def test_connected_subtrees_count(self):
        # A path of 3 has 6 connected subtrees: 3 vertices, 2 edges, itself.
        subtrees = list(path_tree().connected_subtrees())
        assert len(subtrees) == 6
        sizes = sorted(tree.size for tree in subtrees)
        assert sizes == [1, 1, 1, 2, 2, 3]

    def test_child_subtrees(self):
        children = path_tree().child_subtrees()
        assert len(children) == 2
        assert all(child.size == 2 for child in children)

    def test_is_subtree_of(self):
        tree = path_tree()
        for subtree in tree.connected_subtrees():
            assert subtree.is_subtree_of(tree)
        assert not tree.is_subtree_of(next(iter(tree.child_subtrees())))

    def test_postorder_ends_at_root(self):
        tree = path_tree()
        root = inst("Color", 1)
        order = tree.postorder(root)
        assert order[-1][0] == root
        assert len(order) == 3

    def test_describe(self):
        assert "Item[0]" in path_tree().describe()

    def test_validate_against_schema(self, schema):
        validate_against_schema(path_tree(), schema)

    def test_validate_against_schema_rejects_wrong_columns(self, schema):
        color, item = inst("Color", 1), inst("Item", 0)
        bad = JoinEdge("item_color", item, "attr", color, "id")
        tree = JoinTree(frozenset([color, item]), frozenset([bad]))
        with pytest.raises(JoinTreeError):
            validate_against_schema(tree, schema)


class TestBoundQuery:
    def test_binding_to_free_copy_rejected(self):
        tree = JoinTree.single(inst("Item", 0))
        with pytest.raises(JoinTreeError):
            BoundQuery.from_mapping(tree, {inst("Item", 0): "candle"})

    def test_binding_to_missing_instance_rejected(self):
        tree = JoinTree.single(inst("Item", 1))
        with pytest.raises(JoinTreeError):
            BoundQuery.from_mapping(tree, {inst("Color", 1): "red"})

    def test_keywords_and_lookup(self):
        tree = path_tree()
        query = BoundQuery.from_mapping(
            tree, {inst("Color", 1): "red", inst("ProductType", 2): "candle"}
        )
        assert query.keywords == frozenset({"red", "candle"})
        assert query.keyword_of(inst("Color", 1)) == "red"
        assert query.keyword_of(inst("Item", 0)) is None

    def test_subquery_restricts_bindings(self):
        tree = path_tree()
        query = BoundQuery.from_mapping(
            tree, {inst("Color", 1): "red", inst("ProductType", 2): "candle"}
        )
        child = [
            t for t in tree.child_subtrees() if inst("Color", 1) in t.instances
        ][0]
        sub = query.subquery(child)
        assert sub.keywords == frozenset({"red"})

    def test_subquery_of_non_subtree_rejected(self):
        tree = path_tree()
        query = BoundQuery.from_mapping(tree, {})
        with pytest.raises(JoinTreeError):
            query.subquery(JoinTree.single(inst("Attribute", 1)))

    def test_describe_shows_bindings(self):
        tree = path_tree()
        query = BoundQuery.from_mapping(tree, {inst("Color", 1): "red"})
        assert "Color[1]{red}" in query.describe()
