"""Unit tests for Phase 1: keyword binding and lattice pruning."""

import pytest

from repro.core.binding import BindingError, KeywordBinder, bind_tree
from repro.index.mapper import Interpretation
from repro.relational.jointree import RelationInstance


def interp(*pairs):
    return Interpretation(tuple(pairs))


@pytest.fixture(scope="module")
def binder(products_debugger):
    return products_debugger.binder


RED_CANDLE = interp(("red", "Color"), ("candle", "ProductType"))


class TestBind:
    def test_keyword_positions_become_slots(self, binder):
        binding = binder.bind(RED_CANDLE)
        assert binding.by_keyword == (
            ("red", RelationInstance("Color", 1)),
            ("candle", RelationInstance("ProductType", 2)),
        )

    def test_same_relation_keywords_get_distinct_slots(self, binder):
        binding = binder.bind(interp(("saffron", "Item"), ("scented", "Item")))
        assert binding.instances == {
            RelationInstance("Item", 1),
            RelationInstance("Item", 2),
        }

    def test_unknown_relation_rejected(self, binder):
        with pytest.raises(BindingError):
            binder.bind(interp(("x", "Nope")))

    def test_too_many_keywords_rejected(self, products_db):
        from repro.core.lattice import generate_lattice

        lattice = generate_lattice(products_db.schema, 1, max_keywords=1)
        binder = KeywordBinder(lattice)
        with pytest.raises(BindingError):
            binder.bind(interp(("a", "Item"), ("b", "Color")))

    def test_describe(self, binder):
        assert "red->Color[1]" in binder.bind(RED_CANDLE).describe()


class TestPrune:
    def test_retained_instances_are_allowed(self, binder):
        pruned = binder.prune(RED_CANDLE)
        allowed = set(pruned.binding.instances) | {
            RelationInstance(name, 0) for name in binder.schema.relations
        }
        for tree in pruned.retained:
            assert set(tree.instances) <= allowed

    def test_retained_exactly_matches_definition(self, binder):
        """The walk retains exactly the lattice nodes over the alphabet."""
        pruned = binder.prune(RED_CANDLE)
        allowed = set(pruned.binding.instances) | {
            RelationInstance(name, 0) for name in binder.schema.relations
        }
        expected = {
            node.tree
            for node in binder.lattice.iter_nodes()
            if set(node.tree.instances) <= allowed
        }
        assert set(pruned.retained) == expected

    def test_substantial_pruning(self, binder):
        pruned = binder.prune(RED_CANDLE)
        assert pruned.pruned_fraction > 0.5
        assert pruned.retained_count > 0
        assert pruned.pruning_time >= 0

    def test_is_total(self, binder):
        pruned = binder.prune(RED_CANDLE)
        total = [tree for tree in pruned.retained if pruned.is_total(tree)]
        assert total
        for tree in total:
            assert pruned.binding.instances <= tree.instances

    def test_instantiate_attaches_keywords(self, binder):
        pruned = binder.prune(RED_CANDLE)
        tree = next(tree for tree in pruned.retained if pruned.is_total(tree))
        query = pruned.instantiate(tree)
        assert query.keywords == {"red", "candle"}
        assert pruned.instantiate(tree) is query  # cached

    def test_instantiate_pruned_tree_rejected(self, binder):
        from repro.relational.jointree import JoinTree

        pruned = binder.prune(RED_CANDLE)
        foreign = JoinTree.single(RelationInstance("Item", 3))
        with pytest.raises(BindingError):
            pruned.instantiate(foreign)


class TestDirectGeneration:
    def test_direct_equals_lattice_walk(self, binder, products_db):
        """prune() and prune_direct() retain identical tree sets."""
        direct_binder = KeywordBinder(
            schema=products_db.schema, max_joins=binder.max_joins,
            max_keywords=binder.max_keywords,
        )
        for interpretation in (
            RED_CANDLE,
            interp(("saffron", "Color"), ("scented", "Item"), ("candle", "ProductType")),
            interp(("saffron", "Item"), ("scented", "Item")),
        ):
            walked = set(binder.prune(interpretation).retained)
            generated = set(direct_binder.prune_direct(interpretation).retained)
            assert walked == generated

    def test_mtn_targeted_is_subset_with_same_mtns(self, binder, products_db):
        from repro.core.mtn import find_mtns

        direct_binder = KeywordBinder(
            schema=products_db.schema, max_joins=binder.max_joins,
            max_keywords=binder.max_keywords,
        )
        for interpretation in (
            RED_CANDLE,
            interp(("saffron", "Color"), ("scented", "Item"), ("candle", "ProductType")),
        ):
            complete = direct_binder.prune_direct(interpretation)
            targeted = direct_binder.prune_for_mtns(interpretation)
            assert not targeted.complete
            assert set(targeted.retained) <= set(complete.retained)
            assert find_mtns(targeted) == find_mtns(complete)

    def test_binder_requires_lattice_or_schema(self):
        with pytest.raises(BindingError):
            KeywordBinder()


class TestBindTree:
    def test_bind_tree_skips_missing_instances(self, binder):
        binding = binder.bind(RED_CANDLE)
        pruned = binder.prune(RED_CANDLE)
        partial = next(
            tree for tree in pruned.retained
            if not pruned.is_total(tree)
            and any(not i.is_free for i in tree.instances)
        )
        query = bind_tree(partial, binding)
        assert 0 < len(query.bindings) < len(binding.by_keyword) + 1
