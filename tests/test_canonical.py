"""Unit tests for canonical labeling (Algorithm 2)."""

import pytest

from repro.core.canonical import canonical_code, canonical_string
from repro.relational.jointree import JoinEdge, JoinTree, RelationInstance


def inst(relation, copy):
    return RelationInstance(relation, copy)


@pytest.fixture(scope="module")
def schema(products_db):
    return products_db.schema


def star(schema, center_copy=0, leaf_copies=(1, 2, 3)):
    """Item[center] joined to ProductType, Color, Attribute leaves."""
    item = inst("Item", center_copy)
    instances = {item}
    edges = set()
    for fk_name, relation, copy in zip(
        ("item_ptype", "item_color", "item_attr"),
        ("ProductType", "Color", "Attribute"),
        leaf_copies,
    ):
        leaf = inst(relation, copy)
        instances.add(leaf)
        edges.add(JoinEdge.from_fk(schema.foreign_key(fk_name), item, leaf))
    return JoinTree(frozenset(instances), frozenset(edges))


class TestCanonicalCode:
    def test_equal_trees_equal_codes(self, schema):
        assert canonical_code(star(schema), schema) == canonical_code(
            star(schema), schema
        )

    def test_different_copies_different_codes(self, schema):
        assert canonical_code(star(schema, leaf_copies=(1, 2, 3)), schema) != (
            canonical_code(star(schema, leaf_copies=(2, 1, 3)), schema)
        )

    def test_construction_order_irrelevant(self, schema):
        """The same tree built in different edge orders has one code."""
        item = inst("Item", 0)
        color = inst("Color", 1)
        ptype = inst("ProductType", 2)
        e_color = JoinEdge.from_fk(schema.foreign_key("item_color"), item, color)
        e_ptype = JoinEdge.from_fk(schema.foreign_key("item_ptype"), item, ptype)
        one = JoinTree.single(item).extend(e_color, color).extend(e_ptype, ptype)
        two = JoinTree.single(item).extend(e_ptype, ptype).extend(e_color, color)
        assert canonical_code(one, schema) == canonical_code(two, schema)

    def test_single_node(self, schema):
        code = canonical_code(JoinTree.single(inst("Item", 1)), schema)
        assert code[1] == ()  # no children

    def test_code_is_hashable(self, schema):
        hash(canonical_code(star(schema), schema))


class TestCanonicalString:
    def test_paper_style_brackets(self, schema):
        text = canonical_string(star(schema), schema)
        assert text.startswith("[")
        assert text.endswith("]")
        assert "|" in text  # the root has children

    def test_leaf_has_no_delimiter(self, schema):
        text = canonical_string(JoinTree.single(inst("Item", 1)), schema)
        assert "|" not in text

    def test_contains_instance_names(self, schema):
        text = canonical_string(star(schema), schema)
        assert "Item[0]" in text
        assert "Color[2]" in text


class TestEquivalenceWithTreeEquality:
    def test_codes_separate_all_level2_lattice_nodes(self, products_debugger):
        """Within a lattice level, distinct trees have distinct codes."""
        lattice = products_debugger.lattice
        schema = lattice.schema
        codes = {}
        for node in lattice.level_nodes(2):
            code = canonical_code(node.tree, schema)
            assert code not in codes, (
                f"collision: {node.tree.describe()} vs {codes[code].describe()}"
            )
            codes[code] = node.tree
