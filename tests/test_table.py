"""Unit tests for the in-memory table storage."""

import pytest

from repro.relational.schema import Attribute, AttributeType, Relation
from repro.relational.table import Table, TableError

INT = AttributeType.INTEGER
TEXT = AttributeType.TEXT
REAL = AttributeType.REAL


@pytest.fixture
def relation():
    return Relation(
        "Item",
        (Attribute("id", INT), Attribute("name", TEXT), Attribute("cost", REAL)),
    )


@pytest.fixture
def table(relation):
    return Table(
        relation,
        [(1, "red candle", 3.99), (2, "blue candle", 4.99), (3, None, 1.0)],
    )


class TestInsert:
    def test_insert_returns_row_id(self, relation):
        table = Table(relation)
        assert table.insert((1, "x", 1.0)) == 0
        assert table.insert((2, "y", 2.0)) == 1

    def test_wrong_arity_rejected(self, relation):
        with pytest.raises(TableError):
            Table(relation, [(1, "x")])

    def test_wrong_type_rejected(self, relation):
        with pytest.raises(TableError):
            Table(relation, [("one", "x", 1.0)])
        with pytest.raises(TableError):
            Table(relation, [(1, 42, 1.0)])

    def test_bool_is_not_integer(self, relation):
        with pytest.raises(TableError):
            Table(relation, [(True, "x", 1.0)])

    def test_int_coerced_to_real(self, relation):
        table = Table(relation, [(1, "x", 2)])
        assert table.value(0, "cost") == 2.0

    def test_nulls_allowed(self, table):
        assert table.value(2, "name") is None

    def test_insert_dict(self, relation):
        table = Table(relation)
        table.insert_dict({"id": 1, "name": "x"})
        assert table.row(0) == (1, "x", None)

    def test_insert_dict_unknown_column(self, relation):
        with pytest.raises(TableError):
            Table(relation).insert_dict({"nope": 1})


class TestAccess:
    def test_len_and_iter(self, table):
        assert len(table) == 3
        assert len(list(table)) == 3

    def test_value(self, table):
        assert table.value(0, "name") == "red candle"

    def test_column_values(self, table):
        assert table.column_values("id") == [1, 2, 3]

    def test_rows_as_dicts(self, table):
        rows = table.rows_as_dicts([1])
        assert rows == [{"id": 2, "name": "blue candle", "cost": 4.99}]

    def test_text_cells_skip_nulls(self, table):
        assert list(table.text_cells(2)) == []
        assert list(table.text_cells(0)) == [("name", "red candle")]


class TestIndexes:
    def test_index_on(self, table):
        index = table.index_on("id")
        assert index[2] == [1]

    def test_nulls_not_indexed(self, table):
        assert None not in table.index_on("name")

    def test_matching_ids(self, table):
        assert table.matching_ids("name", "red candle") == [0]
        assert table.matching_ids("name", None) == []
        assert table.matching_ids("name", "missing") == []

    def test_index_invalidated_on_insert(self, table):
        table.index_on("id")
        table.insert((4, "w", 0.5))
        assert table.matching_ids("id", 4) == [3]

    def test_select_ids(self, table):
        assert table.select_ids(lambda row: row[2] > 4.0) == [1]


class TestForeignKeyValidation:
    def test_violations_found(self, relation):
        parent = Table(
            Relation("P", (Attribute("id", INT),)), [(1,), (2,)]
        )
        child = Table(relation, [(1, "a", 0.0), (9, "b", 0.0), (None, "c", 0.0)])
        assert child.validate_foreign_key("id", parent, "id") == [1]
