"""Resource-leak linter: one firing and one clean fixture per rule."""

import textwrap

from repro.analysis.resources import lint_resources_source


def codes(source, relative="repro/backends/example.py"):
    return [d.code for d in lint_resources_source(textwrap.dedent(source), relative)]


class TestPoolCheckoutLeak:
    def test_unpaired_checkout_flagged(self):
        source = """
        def leak(pool):
            conn = pool.checkout()
            conn.run()
        """
        assert codes(source) == ["RES001"]

    def test_checkout_with_finally_checkin_clean(self):
        source = """
        def borrow(pool):
            conn = pool.checkout()
            try:
                return conn.run()
            finally:
                pool.checkin(conn)
        """
        assert codes(source) == []

    def test_checkout_with_finally_release_clean(self):
        source = """
        def borrow(pool):
            conn = pool.checkout()
            try:
                return conn.run()
            finally:
                pool.release(conn)
        """
        assert codes(source) == []


class TestSqliteHandleLeak:
    def test_local_connect_without_close_flagged(self):
        source = """
        import sqlite3

        def query(path):
            conn = sqlite3.connect(path)
            return conn.execute("select 1").fetchone()
        """
        assert codes(source) == ["RES002"]

    def test_connect_closed_in_finally_clean(self):
        source = """
        import sqlite3

        def query(path):
            conn = sqlite3.connect(path)
            try:
                return conn.execute("select 1").fetchone()
            finally:
                conn.close()
        """
        assert codes(source) == []

    def test_connect_stored_on_class_with_close_clean(self):
        source = """
        import sqlite3

        class Store:
            def __init__(self, path):
                self._conn = sqlite3.connect(path)

            def close(self) -> None:
                self._conn.close()
        """
        assert codes(source) == []

    def test_connect_stored_on_class_without_close_flagged(self):
        source = """
        import sqlite3

        class Store:
            def __init__(self, path):
                self._conn = sqlite3.connect(path)
        """
        assert codes(source) == ["RES002"]

    def test_factory_return_clean(self):
        source = """
        import sqlite3

        def make_connection(path):
            conn = sqlite3.connect(path)
            conn.execute("pragma journal_mode=wal")
            return conn
        """
        assert codes(source) == []

    def test_context_manager_clean(self):
        source = """
        import sqlite3

        def query(path):
            with sqlite3.connect(path) as conn:
                return conn.execute("select 1").fetchone()
        """
        assert codes(source) == []

    def test_bare_cursor_without_lifecycle_flagged(self):
        source = """
        def rows(conn):
            cur = conn.cursor()
            cur.execute("select 1")
            return cur.fetchall()
        """
        assert codes(source) == ["RES002"]

    def test_cursor_closed_in_finally_clean(self):
        source = """
        def rows(conn):
            cur = conn.cursor()
            try:
                cur.execute("select 1")
                return cur.fetchall()
            finally:
                cur.close()
        """
        assert codes(source) == []


class TestNonAtomicArtifactWrite:
    def test_write_mode_open_flagged(self):
        source = """
        def save(path, payload):
            with open(path, "w") as handle:
                handle.write(payload)
        """
        assert codes(source) == ["RES003"]

    def test_keyword_mode_flagged(self):
        source = """
        def save(path, payload):
            handle = open(path, mode="wb")
        """
        assert codes(source) == ["RES003"]

    def test_read_mode_clean(self):
        source = """
        def load(path):
            with open(path) as handle:
                return handle.read()
        """
        assert codes(source) == []

    def test_write_text_flagged(self):
        source = """
        def save(path, payload):
            path.write_text(payload)
        """
        assert codes(source) == ["RES003"]

    def test_ioutil_module_exempt(self):
        source = """
        def atomic_write_text(path, content):
            with open(path, "w") as handle:
                handle.write(content)
        """
        assert codes(source, relative="repro/ioutil.py") == []

    def test_dynamic_mode_not_flagged(self):
        # A non-constant mode cannot be judged statically; stay silent
        # rather than guess.
        source = """
        def touch(path, mode):
            handle = open(path, mode)
        """
        assert codes(source) == []
