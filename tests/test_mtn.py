"""Unit tests for Phase 2: MTN discovery and the exploration graph."""

import pytest

from repro.core.mtn import (
    build_exploration_graph,
    find_mtns,
    is_minimal_total,
)
from repro.index.mapper import Interpretation
from repro.relational.jointree import RelationInstance


def interp(*pairs):
    return Interpretation(tuple(pairs))


RED_CANDLE = interp(("red", "Color"), ("candle", "ProductType"))
SAFFRON_Q1 = interp(
    ("saffron", "Color"), ("scented", "Item"), ("candle", "ProductType")
)


@pytest.fixture(scope="module")
def pruned(products_debugger):
    return products_debugger.binder.prune(RED_CANDLE)


@pytest.fixture(scope="module")
def graph(products_debugger, pruned):
    return build_exploration_graph([pruned])


class TestFindMtns:
    def test_red_candle_has_the_connecting_mtn(self, pruned):
        """'red candle' needs the free Item table to connect C and P (§2.3)."""
        mtns = find_mtns(pruned)
        descriptions = {tree.describe() for tree in mtns}
        assert "Color[1] ⋈ Item[0] ⋈ ProductType[2]" in descriptions

    def test_mtns_are_total_with_bound_leaves(self, pruned):
        for tree in find_mtns(pruned):
            assert pruned.binding.instances <= tree.instances
            assert all(leaf in pruned.binding.instances for leaf in tree.leaves())

    def test_no_mtn_contains_another(self, pruned):
        mtns = find_mtns(pruned)
        for one in mtns:
            for other in mtns:
                if one is not other:
                    assert not one.is_subtree_of(other)

    def test_is_minimal_total_rejects_partial(self, pruned):
        binding = pruned.binding
        partial = next(
            tree for tree in pruned.retained
            if not binding.instances <= tree.instances
        )
        assert not is_minimal_total(partial, binding)


class TestExplorationGraph:
    def test_contains_all_subtrees(self, graph):
        for mtn in graph.mtns():
            for subtree in mtn.tree.connected_subtrees():
                matches = [
                    node for node in graph.nodes if node.tree == subtree
                ]
                assert matches

    def test_parent_child_consistency(self, graph):
        for node in graph.nodes:
            for child_index in node.children:
                child = graph.node(child_index)
                assert child.tree.is_subtree_of(node.tree)
                assert child.level == node.level - 1
                assert node.index in child.parents

    def test_masks_match_structure(self, graph):
        for node in graph.nodes:
            for other_index in graph.bits(graph.desc_mask[node.index]):
                assert graph.node(other_index).tree.is_subtree_of(node.tree)
            for other_index in graph.bits(graph.asc_mask[node.index]):
                assert node.tree.is_subtree_of(graph.node(other_index).tree)

    def test_mtns_are_maximal(self, graph):
        """No exploration node strictly contains an MTN (minimality)."""
        for mtn_index in graph.mtn_indexes:
            assert graph.asc_mask[mtn_index] == 0

    def test_desc_asc_are_transposes(self, graph):
        for node in graph.nodes:
            for other in graph.bits(graph.desc_mask[node.index]):
                assert (graph.asc_mask[other] >> node.index) & 1

    def test_bits_roundtrip(self, graph):
        mask = sum(1 << i for i in (0, 3, 5) if i < len(graph))
        assert graph.bits(mask) == [i for i in (0, 3, 5) if i < len(graph)]

    def test_descendant_counts(self, graph):
        total, unique = graph.descendant_counts()
        assert unique <= total
        assert 0.0 <= graph.reuse_percentage() <= 100.0

    def test_same_tree_different_keywords_distinct_nodes(self, products_debugger):
        """Regression: interning must key on bound queries, not trees.

        'saffron' and 'scented' both map to Item; slot 1 carries 'saffron'
        in one interpretation and e.g. 'red' in another query's -- within a
        single graph two interpretations can disagree on what slot 1 of a
        relation means only via different keywords, which must not collide.
        """
        binder = products_debugger.binder
        one = binder.prune(interp(("saffron", "Item"), ("candle", "ProductType")))
        two = binder.prune(interp(("scented", "Item"), ("candle", "ProductType")))
        graph = build_exploration_graph([one, two])
        single_item_nodes = [
            node.query.describe()
            for node in graph.nodes
            if node.tree.instances == frozenset({RelationInstance("Item", 1)})
        ]
        assert sorted(single_item_nodes) == ["Item[1]{saffron}", "Item[1]{scented}"]

    def test_multi_interpretation_graph_shares_subqueries(
        self, products_debugger
    ):
        """q1 and q2 of Example 1 share P^candle ⋈ I^scented."""
        binder = products_debugger.binder
        q1 = binder.prune(SAFFRON_Q1)
        q2 = binder.prune(
            interp(("saffron", "Attribute"), ("scented", "Item"),
                   ("candle", "ProductType"))
        )
        graph = build_exploration_graph([q1, q2])
        shared = [
            node
            for node in graph.nodes
            if node.query.keywords == frozenset({"scented", "candle"})
            and node.tree.size == 2
        ]
        assert len(shared) == 1  # one node, referenced by both MTNs
        mask = 1 << shared[0].index
        covering_mtns = [
            mtn for mtn in graph.mtn_indexes if graph.desc_mask[mtn] & mask
        ]
        assert len(covering_mtns) >= 2
