"""Tests for lattice and report persistence."""

import json

import pytest

from repro.core.persistence import (
    PersistenceError,
    decode_tree,
    encode_tree,
    load_lattice,
    report_to_dict,
    save_lattice,
    save_report,
)


class TestTreeRoundtrip:
    def test_encode_decode(self, products_debugger):
        for node in products_debugger.lattice.level_nodes(3)[:20]:
            assert decode_tree(encode_tree(node.tree)) == node.tree

    def test_malformed_payload(self):
        with pytest.raises(PersistenceError):
            decode_tree({"instances": [["R"]], "edges": []})


class TestLatticeRoundtrip:
    def test_roundtrip_preserves_everything(self, products_debugger, tmp_path):
        lattice = products_debugger.lattice
        path = tmp_path / "lattice.json"
        save_lattice(lattice, path)
        loaded = load_lattice(path, lattice.schema)

        assert len(loaded) == len(lattice)
        assert loaded.max_joins == lattice.max_joins
        assert loaded.max_keywords == lattice.max_keywords
        for original, restored in zip(lattice.nodes, loaded.nodes):
            assert original.tree == restored.tree
            assert sorted(original.parents) == sorted(restored.parents)
            assert sorted(original.children) == sorted(restored.children)
        assert loaded.stats.nodes_per_level == lattice.stats.nodes_per_level

    def test_loaded_lattice_answers_queries(self, products_db, products_debugger, tmp_path):
        from repro.core.debugger import NonAnswerDebugger

        path = tmp_path / "lattice.json"
        save_lattice(products_debugger.lattice, path)
        loaded = load_lattice(path, products_db.schema)
        debugger = NonAnswerDebugger(products_db, lattice=loaded)
        report = debugger.debug("saffron scented candle")
        baseline = products_debugger.debug("saffron scented candle")
        assert {q.describe() for q in report.non_answers()} == {
            q.describe() for q in baseline.non_answers()
        }

    def test_wrong_schema_rejected(self, products_debugger, dblife_db, tmp_path):
        path = tmp_path / "lattice.json"
        save_lattice(products_debugger.lattice, path)
        with pytest.raises(PersistenceError, match="different schema"):
            load_lattice(path, dblife_db.schema)

    def test_wrong_kind_rejected(self, tmp_path, products_db):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"kind": "nonsense", "format": 1}))
        with pytest.raises(PersistenceError):
            load_lattice(path, products_db.schema)


class TestReportExport:
    def test_report_dict_contents(self, products_debugger):
        report = products_debugger.debug("saffron scented candle")
        payload = report_to_dict(report)
        assert payload["query"] == "saffron scented candle"
        assert payload["mtn_count"] == 5
        assert len(payload["non_answers"]) == 4
        assert payload["sql_queries_executed"] > 0
        for entry in payload["non_answers"]:
            assert entry["mpans"], "every dead CN has at least one MPAN here"

    def test_aborted_report(self, products_debugger):
        payload = report_to_dict(products_debugger.debug("sofa"))
        assert payload["aborted"] is True
        assert "answers" not in payload

    def test_save_report_is_json(self, products_debugger, tmp_path):
        report = products_debugger.debug("red candle")
        path = tmp_path / "report.json"
        save_report(report, path)
        parsed = json.loads(path.read_text())
        assert parsed["kind"] == "debug_report"
