"""Tests for lattice and report persistence."""

import json

import pytest

from repro.core.lattice import Lattice
from repro.core.persistence import (
    PersistenceError,
    decode_query,
    decode_tree,
    encode_query,
    encode_tree,
    load_lattice,
    load_report,
    report_to_dict,
    save_lattice,
    save_report,
)


class TestTreeRoundtrip:
    def test_encode_decode(self, products_debugger):
        for node in products_debugger.lattice.level_nodes(3)[:20]:
            assert decode_tree(encode_tree(node.tree)) == node.tree

    def test_malformed_payload(self):
        with pytest.raises(PersistenceError):
            decode_tree({"instances": [["R"]], "edges": []})


class TestLatticeRoundtrip:
    def test_roundtrip_preserves_everything(self, products_debugger, tmp_path):
        lattice = products_debugger.lattice
        path = tmp_path / "lattice.json"
        save_lattice(lattice, path)
        loaded = load_lattice(path, lattice.schema)

        assert len(loaded) == len(lattice)
        assert loaded.max_joins == lattice.max_joins
        assert loaded.max_keywords == lattice.max_keywords
        for original, restored in zip(lattice.nodes, loaded.nodes):
            assert original.tree == restored.tree
            assert sorted(original.parents) == sorted(restored.parents)
            assert sorted(original.children) == sorted(restored.children)
        assert loaded.stats.nodes_per_level == lattice.stats.nodes_per_level

    def test_loaded_lattice_answers_queries(self, products_db, products_debugger, tmp_path):
        from repro.core.debugger import NonAnswerDebugger

        path = tmp_path / "lattice.json"
        save_lattice(products_debugger.lattice, path)
        loaded = load_lattice(path, products_db.schema)
        debugger = NonAnswerDebugger(products_db, lattice=loaded)
        report = debugger.debug("saffron scented candle")
        baseline = products_debugger.debug("saffron scented candle")
        assert {q.describe() for q in report.non_answers()} == {
            q.describe() for q in baseline.non_answers()
        }

    def test_wrong_schema_rejected(self, products_debugger, dblife_db, tmp_path):
        path = tmp_path / "lattice.json"
        save_lattice(products_debugger.lattice, path)
        with pytest.raises(PersistenceError, match="different schema"):
            load_lattice(path, dblife_db.schema)

    def test_wrong_kind_rejected(self, tmp_path, products_db):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"kind": "nonsense", "format": 1}))
        with pytest.raises(PersistenceError):
            load_lattice(path, products_db.schema)


class TestReportExport:
    def test_report_dict_contents(self, products_debugger):
        report = products_debugger.debug("saffron scented candle")
        payload = report_to_dict(report)
        assert payload["query"] == "saffron scented candle"
        assert payload["mtn_count"] == 5
        assert len(payload["non_answers"]) == 4
        assert payload["sql_queries_executed"] > 0
        for entry in payload["non_answers"]:
            assert entry["mpans"], "every dead CN has at least one MPAN here"

    def test_aborted_report(self, products_debugger):
        payload = report_to_dict(products_debugger.debug("sofa"))
        assert payload["aborted"] is True
        assert "answers" not in payload

    def test_save_report_is_json(self, products_debugger, tmp_path):
        report = products_debugger.debug("red candle")
        path = tmp_path / "report.json"
        save_report(report, path)
        parsed = json.loads(path.read_text())
        assert parsed["kind"] == "debug_report"


class TestAtomicWrites:
    def test_no_temp_files_left_behind(self, products_debugger, tmp_path):
        save_lattice(products_debugger.lattice, tmp_path / "lattice.json")
        save_report(products_debugger.debug("red candle"), tmp_path / "r.json")
        names = {entry.name for entry in tmp_path.iterdir()}
        assert names == {"lattice.json", "r.json"}

    def test_overwrite_replaces_content(self, products_debugger, tmp_path):
        path = tmp_path / "report.json"
        save_report(products_debugger.debug("red candle"), path)
        save_report(products_debugger.debug("saffron scented candle"), path)
        assert json.loads(path.read_text())["query"] == "saffron scented candle"

    def test_failed_write_keeps_the_old_artifact(self, products_debugger, tmp_path):
        from repro.core import persistence

        path = tmp_path / "report.json"
        report = products_debugger.debug("red candle")
        save_report(report, path)
        before = path.read_text()

        class Unserializable:
            pass

        broken = report_to_dict(report)
        broken["oops"] = Unserializable()
        with pytest.raises(TypeError):
            persistence._atomic_write_text(
                path, json.dumps(broken)  # json.dumps raises before any write
            )
        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path]


class TestFromParts:
    def test_rebuilds_identical_lattice(self, products_debugger):
        lattice = products_debugger.lattice
        rebuilt = Lattice.from_parts(
            lattice.schema,
            lattice.max_joins,
            nodes=[(node.tree, node.parents) for node in lattice.nodes],
            max_keywords=lattice.max_keywords,
            distinct_slots=lattice.distinct_slots,
            free_copies=lattice.free_copies,
            stats=lattice.stats,
        )
        assert len(rebuilt) == len(lattice)
        for original, restored in zip(lattice.nodes, rebuilt.nodes):
            assert original.tree == restored.tree
            assert sorted(original.parents) == sorted(restored.parents)
            assert sorted(original.children) == sorted(restored.children)

    def test_duplicate_tree_rejected(self, products_debugger):
        lattice = products_debugger.lattice
        tree = lattice.nodes[0].tree
        with pytest.raises(ValueError, match="duplicate join tree"):
            Lattice.from_parts(
                lattice.schema, lattice.max_joins, nodes=[(tree, []), (tree, [])]
            )

    def test_dangling_parent_rejected(self, products_debugger):
        lattice = products_debugger.lattice
        tree = lattice.nodes[0].tree
        with pytest.raises(ValueError, match="dangling parent"):
            Lattice.from_parts(
                lattice.schema, lattice.max_joins, nodes=[(tree, [99])]
            )

    def test_corrupt_lattice_file_is_persistence_error(
        self, products_debugger, products_db, tmp_path
    ):
        path = tmp_path / "lattice.json"
        save_lattice(products_debugger.lattice, path)
        payload = json.loads(path.read_text())
        payload["nodes"][1] = payload["nodes"][0]  # duplicate a node
        path.write_text(json.dumps(payload))
        with pytest.raises(PersistenceError, match="corrupt lattice file"):
            load_lattice(path, products_db.schema)


class TestReportRoundtrip:
    def test_query_roundtrip(self, products_debugger):
        report = products_debugger.debug("saffron scented candle")
        for query in report.non_answers() + report.answers():
            assert decode_query(encode_query(query)) == query

    def test_malformed_query_payload(self):
        with pytest.raises(PersistenceError, match="malformed bound query"):
            decode_query({"bindings": [], "mode": "token"})  # no tree

    def test_load_report_roundtrip(self, products_debugger, tmp_path):
        report = products_debugger.debug("saffron scented candle")
        path = tmp_path / "report.json"
        save_report(report, path)
        loaded = load_report(path)
        assert loaded["query"] == "saffron scented candle"
        assert loaded["answers"] == report.answers()
        assert [entry["query"] for entry in loaded["non_answers"]] == (
            report.non_answers()
        )
        for entry, (_, mpans) in zip(
            loaded["non_answers"], report.explanations()
        ):
            assert entry["mpans"] == mpans

    def test_load_report_rejects_other_kinds(
        self, products_debugger, products_db, tmp_path
    ):
        path = tmp_path / "lattice.json"
        save_lattice(products_debugger.lattice, path)
        with pytest.raises(PersistenceError, match="not a v1 debug report"):
            load_report(path)

    def test_load_report_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "truncated.json"
        path.write_text(json.dumps({"kind": "debug_report", "format": 1}))
        with pytest.raises(PersistenceError, match="missing report field"):
            load_report(path)

    def test_load_report_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"kind": "debug_report"')
        with pytest.raises(PersistenceError, match="not valid JSON"):
            load_report(path)
