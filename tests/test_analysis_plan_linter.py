"""Plan linter: clean lattices lint clean, seeded corruptions are caught.

The corruption property tests exercise the linter the way a real bug
would: trees are rebuilt through ``JoinTree._unchecked`` (the validation-
skipping fast path the hot loops use), so nothing raises at construction
time and only the static analyzer stands between the corruption and the
sqlite backend.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    lint_built_lattice,
    lint_candidate_networks,
    lint_lattice,
    lint_tree,
)
from repro.core.binding import KeywordBinder
from repro.core.lattice import generate_lattice
from repro.datasets.dblife import dblife_schema
from repro.datasets.products import product_schema
from repro.index.mapper import Interpretation
from repro.kws.candidate_networks import enumerate_candidate_networks
from repro.relational.jointree import JoinEdge, JoinTree, RelationInstance
from repro.relational.schema import (
    Attribute,
    AttributeType,
    ForeignKey,
    Relation,
    SchemaGraph,
)


def unchecked_tree(instances, edges) -> JoinTree:
    """Build a (possibly invalid) tree without constructor validation."""
    adjacency = {
        instance: tuple(e for e in edges if instance in (e.a, e.b))
        for instance in instances
    }
    return JoinTree._unchecked(frozenset(instances), frozenset(edges), adjacency)


def rename_instance(tree: JoinTree, old, new) -> JoinTree:
    instances = [new if i == old else i for i in tree.instances]
    edges = [
        JoinEdge(
            e.fk,
            new if e.a == old else e.a,
            e.a_column,
            new if e.b == old else e.b,
            e.b_column,
        )
        for e in tree.edges
    ]
    return unchecked_tree(instances, edges)


@pytest.fixture(scope="module")
def schema():
    return product_schema()


@pytest.fixture(scope="module")
def lattice(schema):
    return generate_lattice(schema, max_joins=2)


# ------------------------------------------------------------------ clean
def test_fresh_products_lattice_has_zero_diagnostics(lattice):
    report = lint_built_lattice(lattice)
    assert report.ok, "\n" + report.render()
    assert len(report) == 0


def test_fresh_dblife_lattice_has_zero_diagnostics():
    lattice = generate_lattice(dblife_schema(), max_joins=2)
    report = lint_built_lattice(lattice)
    assert report.ok, "\n" + report.render()
    assert len(report) == 0


# ----------------------------------------------------- seeded corruptions
@settings(max_examples=30, deadline=None)
@given(st.data())
def test_removed_edge_yields_disconnected_tree(lattice, data):
    eligible = [n for n in lattice.iter_nodes() if len(n.tree.edges) >= 2]
    node = data.draw(st.sampled_from(eligible))
    doomed = data.draw(st.sampled_from(sorted(node.tree.edges, key=str)))
    corrupted = unchecked_tree(
        node.tree.instances, node.tree.edges - {doomed}
    )
    found = lint_tree(corrupted, lattice.schema)
    assert any(d.code == "PLAN002" for d in found)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_dangling_fk_yields_plan001(lattice, data):
    eligible = [n for n in lattice.iter_nodes() if n.tree.edges]
    node = data.draw(st.sampled_from(eligible))
    victim = data.draw(st.sampled_from(sorted(node.tree.edges, key=str)))
    corrupted = unchecked_tree(
        node.tree.instances,
        (node.tree.edges - {victim}) | {replace(victim, fk="ghost_fk")},
    )
    found = lint_tree(corrupted, lattice.schema)
    assert any(d.code == "PLAN001" for d in found)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_wrong_join_column_yields_plan001(lattice, data):
    eligible = [n for n in lattice.iter_nodes() if n.tree.edges]
    node = data.draw(st.sampled_from(eligible))
    victim = data.draw(st.sampled_from(sorted(node.tree.edges, key=str)))
    relation = lattice.schema.relation(victim.a.relation)
    other_columns = [
        name for name in relation.attribute_names if name != victim.a_column
    ]
    assume(other_columns)
    wrong = data.draw(st.sampled_from(other_columns))
    corrupted = unchecked_tree(
        node.tree.instances,
        (node.tree.edges - {victim}) | {replace(victim, a_column=wrong)},
    )
    found = lint_tree(corrupted, lattice.schema)
    assert any(d.code == "PLAN001" for d in found)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_swapped_slot_yields_duplicate_slot(lattice, data):
    eligible = [
        n
        for n in lattice.iter_nodes()
        if sum(1 for i in n.tree.instances if not i.is_free) >= 2
    ]
    node = data.draw(st.sampled_from(eligible))
    bound = sorted(i for i in node.tree.instances if not i.is_free)
    victim = data.draw(st.sampled_from(bound))
    target = data.draw(st.sampled_from([i for i in bound if i != victim]))
    clone = RelationInstance(victim.relation, target.copy)
    assume(clone not in node.tree.instances)
    corrupted = rename_instance(node.tree, victim, clone)
    found = lint_tree(
        corrupted,
        lattice.schema,
        max_keywords=lattice.max_keywords,
        distinct_slots=True,
    )
    assert any(d.code == "PLAN004" for d in found)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_overflowing_slot_yields_unbound_keyword_slot(lattice, data):
    eligible = [
        n for n in lattice.iter_nodes()
        if any(not i.is_free for i in n.tree.instances)
    ]
    node = data.draw(st.sampled_from(eligible))
    bound = sorted(i for i in node.tree.instances if not i.is_free)
    victim = data.draw(st.sampled_from(bound))
    overflow = RelationInstance(victim.relation, lattice.max_keywords + 5)
    corrupted = rename_instance(node.tree, victim, overflow)
    found = lint_tree(
        corrupted, lattice.schema, max_keywords=lattice.max_keywords
    )
    assert any(d.code == "PLAN005" for d in found)


def test_type_mismatched_fk_yields_plan003():
    """A schema may declare an INTEGER->REAL association; the linter flags
    any tree edge instantiating it."""
    schema = SchemaGraph.build(
        [
            Relation(
                "A",
                (
                    Attribute("id", AttributeType.INTEGER),
                    Attribute("name", AttributeType.TEXT),
                ),
            ),
            Relation(
                "B",
                (
                    Attribute("weight", AttributeType.REAL),
                    Attribute("label", AttributeType.TEXT),
                ),
            ),
        ],
        [ForeignKey("a_b", "A", "id", "B", "weight")],
    )
    a, b = RelationInstance("A", 1), RelationInstance("B", 2)
    tree = JoinTree.single(a).extend(
        JoinEdge.from_fk(schema.foreign_key("a_b"), a, b), b
    )
    found = lint_tree(tree, schema)
    assert any(d.code == "PLAN003" for d in found)


def test_broken_lattice_link_yields_plan007(schema):
    lattice = generate_lattice(schema, max_joins=1)
    victim = next(n for n in lattice.iter_nodes() if n.parents)
    # Break the mirror: the parent no longer lists the child back.
    parent = lattice.node(victim.parents[0])
    parent.children.remove(victim.node_id)
    report = lint_lattice(lattice)
    assert "PLAN007" in report.codes


def test_mislabeled_level_yields_plan007(schema):
    lattice = generate_lattice(schema, max_joins=1)
    node = lattice.base_nodes()[0]
    node.level = 2
    report = lint_lattice(lattice)
    assert "PLAN007" in report.codes


# ------------------------------------------------------ candidate networks
@pytest.fixture(scope="module")
def binding(schema):
    binder = KeywordBinder(schema=schema, max_joins=2)
    interpretation = Interpretation(
        (("candle", "Item"), ("lavender", "ProductType"))
    )
    return binder.bind(interpretation)


def test_clean_candidate_networks_lint_clean(schema, binding):
    networks = enumerate_candidate_networks(schema, binding, max_size=3)
    assert networks, "expected at least one candidate network"
    report = lint_candidate_networks(networks, binding, schema)
    assert report.ok, "\n" + report.render()
    assert len(report) == 0


def test_network_missing_bound_copy_yields_plan005(schema, binding):
    networks = enumerate_candidate_networks(schema, binding, max_size=3)
    smallest = networks[0]
    bound = sorted(i for i in smallest.instances if not i.is_free)
    # Restricting to a single bound instance drops the other keyword's copy.
    partial = JoinTree.single(bound[0])
    report = lint_candidate_networks([partial], binding, schema)
    assert "PLAN005" in report.codes


def test_network_with_free_leaf_yields_plan006(schema, binding):
    networks = enumerate_candidate_networks(schema, binding, max_size=2)
    base = networks[0]
    anchor = next(iter(base.instances))
    fk = next(
        fk
        for fk in schema.edges_of(anchor.relation)
        if fk.other(anchor.relation) != anchor.relation
    )
    other = RelationInstance(fk.other(anchor.relation), 0)
    assume_ok = other not in base.instances
    assert assume_ok
    if fk.child == anchor.relation:
        edge = JoinEdge.from_fk(fk, anchor, other)
    else:
        edge = JoinEdge.from_fk(fk, other, anchor)
    bloated = base.extend(edge, other)
    report = lint_candidate_networks([bloated], binding, schema)
    assert "PLAN006" in report.codes
