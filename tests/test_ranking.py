"""Tests for explanation filtering and priority ordering."""

import pytest

from repro.core.ranking import (
    ExplanationRanker,
    default_scorer,
    keyword_coverage,
    only_bound,
    relative_size,
)

QUERY = "saffron scented candle"


@pytest.fixture(scope="module")
def report(products_debugger):
    return products_debugger.debug(QUERY)


def first_explanation(report):
    explanations = report.explanations()
    assert explanations
    return explanations[0]


class TestScorers:
    def test_keyword_coverage_bounds(self, report):
        non_answer, mpans = first_explanation(report)
        for mpan in mpans:
            assert 0.0 <= keyword_coverage(mpan, non_answer) <= 1.0

    def test_relative_size_bounds(self, report):
        non_answer, mpans = first_explanation(report)
        for mpan in mpans:
            assert 0.0 < relative_size(mpan, non_answer) < 1.0

    def test_default_scorer_prefers_coverage(self, report):
        """A two-keyword MPAN outranks a one-keyword MPAN."""
        for non_answer, mpans in report.explanations():
            two = [m for m in mpans if len(m.keywords) == 2]
            one = [m for m in mpans if len(m.keywords) == 1]
            if two and one:
                assert default_scorer(two[0], non_answer) > default_scorer(
                    one[0], non_answer
                )
                return
        pytest.skip("no mixed-coverage explanation in this report")


class TestRanker:
    def test_order_is_descending(self, report):
        ranker = ExplanationRanker()
        for explanation in ranker.rank_report(report):
            scores = list(explanation.scores)
            assert scores == sorted(scores, reverse=True)

    def test_top_k(self, report):
        ranker = ExplanationRanker(top_k=1)
        for explanation in ranker.rank_report(report):
            assert len(explanation.mpans) <= 1

    def test_filters_applied(self, report):
        ranker = ExplanationRanker(filters=(only_bound,))
        for explanation in ranker.rank_report(report):
            for mpan in explanation.mpans:
                assert mpan.keywords

    def test_rank_preserves_mpan_set(self, report):
        ranker = ExplanationRanker()
        ranked = ranker.rank_report(report)
        original = {
            non_answer.describe(): {m.describe() for m in mpans}
            for non_answer, mpans in report.explanations()
        }
        for explanation in ranked:
            assert {
                m.describe() for m in explanation.mpans
            } == original[explanation.non_answer.describe()]

    def test_render(self, report):
        text = ExplanationRanker().render(report)
        assert "Prioritized explanations" in text
        assert "⋈" in text

    def test_explanation_top(self, report):
        ranker = ExplanationRanker()
        explanation = ranker.rank_report(report)[0]
        assert len(explanation.top(1)) == 1
