"""Unit tests for the Return-Nothing and Return-Everything baselines."""

import pytest

from repro.core.baselines import ReturnEverything, ReturnNothing
from repro.core.traversal import STRATEGY_NAMES, get_strategy

QUERY = "saffron scented candle"


@pytest.fixture(scope="module")
def rn_result(products_debugger):
    return ReturnNothing(products_debugger).run(QUERY)


@pytest.fixture(scope="module")
def re_result(products_debugger):
    return ReturnEverything(products_debugger).run(QUERY)


class TestReturnNothing:
    def test_submits_every_subset(self, rn_result):
        submissions = rn_result.detail["submissions"]
        assert len(submissions) == 7  # 2^3 - 1 subsets of 3 keywords
        subsets = {entry["subset"] for entry in submissions}
        assert QUERY in subsets
        assert "saffron" in subsets
        assert "scented candle" in subsets

    def test_counts_accumulate(self, rn_result):
        total = sum(entry["queries"] for entry in rn_result.detail["submissions"])
        assert rn_result.stats.queries_executed == total
        assert total > 0

    def test_subset_results_sensible(self, rn_result):
        by_subset = {
            entry["subset"]: entry for entry in rn_result.detail["submissions"]
        }
        # 'scented candle' has answers (items 2-4); every CN evaluated.
        entry = by_subset["scented candle"]
        assert entry["alive_mtns"] > 0
        assert entry["queries"] == entry["alive_mtns"] + entry["dead_mtns"]

    def test_missing_keyword_subset_costs_nothing(self, products_debugger):
        result = ReturnNothing(products_debugger).run("saffron sofa")
        by_subset = {
            entry["subset"]: entry for entry in result.detail["submissions"]
        }
        assert by_subset["saffron sofa"]["queries"] == 0
        assert by_subset["sofa"]["queries"] == 0
        assert by_subset["saffron"]["queries"] > 0


class TestReturnEverything:
    def test_explores_all_descendants_of_dead_mtns(self, re_result):
        # Executed queries = all MTNs + every strict descendant of dead ones,
        # each of them via SQL with no inference.
        assert re_result.stats.queries_executed > len(re_result.alive_mtns) + len(
            re_result.dead_mtns
        )
        assert re_result.stats.cache_hits == 0

    def test_mpans_match_lattice_traversals(self, products_debugger, re_result):
        """RE is ground truth: every strategy must find the same MPANs."""
        report = products_debugger.debug(QUERY, strategy="sbh")
        # Map exploration indexes to query descriptions for comparison.
        graph = report.graph
        ours = {
            graph.node(mtn).query.describe(): sorted(
                q.describe() for q in report.traversal.mpan_queries(mtn)
            )
            for mtn in report.traversal.dead_mtns
        }
        assert ours  # the query does have non-answers
        # RE ran on its own graph; the pipeline is deterministic, so an
        # identically-built graph shares its indexing.
        theirs = {}
        result = ReturnEverything(products_debugger).run(QUERY)
        re_graph = products_debugger.build_graph(
            products_debugger.prune(products_debugger.map_keywords(QUERY))
        )
        for mtn, mpans in result.mpans.items():
            theirs[re_graph.node(mtn).query.describe()] = sorted(
                re_graph.node(i).query.describe() for i in mpans
            )
        assert ours == theirs

    def test_costs_more_than_every_strategy(self, products_debugger, re_result):
        for name in STRATEGY_NAMES:
            strategy = get_strategy(name)
            report = products_debugger.debug(QUERY, strategy=strategy)
            assert (
                report.traversal.stats.queries_executed
                <= re_result.stats.queries_executed
            )

    def test_aborts_on_missing_keyword(self, products_debugger):
        result = ReturnEverything(products_debugger).run("sofa candle")
        assert result.stats.queries_executed == 0
        assert not result.mpans
