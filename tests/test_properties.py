"""Property-based tests (hypothesis) for the system's core invariants.

These pin down the claims DESIGN.md makes:

1. canonical labels are construction-order independent and coincide with
   tree equality on copy-labeled trees;
2. aliveness is monotone (R1/R2 are sound) on random databases;
3. the in-memory engine and the sqlite3 backend agree on aliveness;
4. all five traversal strategies produce identical classifications and
   MPANs, and the reuse variants never execute more queries;
5. lattice MTNs equal independently-generated candidate networks.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.canonical import canonical_code
from repro.core.debugger import NonAnswerDebugger
from repro.core.mtn import find_mtns
from repro.core.traversal import STRATEGY_NAMES, get_strategy
from repro.datasets.products import product_schema
from repro.kws.candidate_networks import enumerate_candidate_networks
from repro.relational.database import Database
from repro.relational.engine import InMemoryEngine
from repro.relational.jointree import JoinTree
from repro.relational.sqlite_backend import SqliteEngine

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

VOCAB = ("saffron", "vanilla", "rose", "scented", "candle", "oil", "soap")
COLOR_WORDS = ("red", "yellow", "pink", "saffron")
PROPERTY_WORDS = ("scent", "pattern")


@st.composite
def product_databases(draw) -> Database:
    """Random small instances of the Figure-2 schema."""
    database = Database(product_schema())
    n_types = draw(st.integers(1, 3))
    for type_id in range(1, n_types + 1):
        name = draw(st.sampled_from(("candle", "oil", "incense", "soap")))
        database.insert("ProductType", (type_id, name))
    n_colors = draw(st.integers(1, 4))
    for color_id in range(1, n_colors + 1):
        database.insert(
            "Color",
            (
                color_id,
                draw(st.sampled_from(COLOR_WORDS)),
                draw(st.sampled_from(("crimson, orange", "golden", "peach"))),
            ),
        )
    n_attrs = draw(st.integers(1, 4))
    for attr_id in range(1, n_attrs + 1):
        database.insert(
            "Attribute",
            (
                attr_id,
                draw(st.sampled_from(PROPERTY_WORDS)),
                draw(st.sampled_from(VOCAB)),
            ),
        )
    n_items = draw(st.integers(0, 8))
    for item_id in range(1, n_items + 1):
        words = draw(st.lists(st.sampled_from(VOCAB), min_size=1, max_size=3))
        database.insert(
            "Item",
            (
                item_id,
                " ".join(words),
                draw(st.one_of(st.none(), st.integers(1, n_types))),
                draw(st.one_of(st.none(), st.integers(1, n_colors))),
                draw(st.one_of(st.none(), st.integers(1, n_attrs))),
                1.0,
                draw(st.sampled_from(VOCAB)),
            ),
        )
    database.validate()
    return database


def random_queries(database: Database, seed: int, count: int = 3) -> list[str]:
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        size = rng.randint(1, 3)
        queries.append(" ".join(rng.sample(VOCAB + COLOR_WORDS, size)))
    return queries


class TestCanonicalInvariance:
    @SETTINGS
    @given(data=st.data())
    def test_shuffled_construction_same_code(self, data, products_debugger):
        """Rebuilding a lattice tree in any edge order gives the same code."""
        lattice = products_debugger.lattice
        node = data.draw(
            st.sampled_from([n for n in lattice.nodes if n.level >= 2])
        )
        edges = data.draw(st.permutations(sorted(
            node.tree.edges, key=lambda e: (e.a, e.a_column, e.b, e.b_column)
        )))
        # Rebuild by repeatedly attaching any edge touching the current tree.
        pending = list(edges)
        start = pending[0]
        tree = JoinTree(frozenset([start.a, start.b]), frozenset([start]))
        pending.remove(start)
        while pending:
            for edge in list(pending):
                new_end = None
                if edge.a in tree.instances and edge.b not in tree.instances:
                    new_end = edge.b
                elif edge.b in tree.instances and edge.a not in tree.instances:
                    new_end = edge.a
                if new_end is not None:
                    tree = tree.extend(edge, new_end)
                    pending.remove(edge)
        schema = lattice.schema
        assert canonical_code(tree, schema) == canonical_code(node.tree, schema)

    @SETTINGS
    @given(data=st.data())
    def test_code_equality_iff_tree_equality(self, data, products_debugger):
        lattice = products_debugger.lattice
        schema = lattice.schema
        one = data.draw(st.sampled_from(lattice.nodes))
        other = data.draw(st.sampled_from(lattice.nodes))
        codes_equal = canonical_code(one.tree, schema) == canonical_code(
            other.tree, schema
        )
        assert codes_equal == (one.tree == other.tree)


class TestMonotonicity:
    @SETTINGS
    @given(database=product_databases(), seed=st.integers(0, 10_000))
    def test_alive_implies_subqueries_alive(self, database, seed):
        """R1/R2 soundness against the actual engine."""
        engine = InMemoryEngine(database)
        debugger = NonAnswerDebugger(database, max_joins=2)
        for text in random_queries(database, seed, count=2):
            report = debugger.debug(text)
            if report.graph is None:
                continue
            for node in report.graph.nodes:
                if engine.is_alive(node.query):
                    for child_tree in node.tree.child_subtrees():
                        sub = node.query.subquery(child_tree)
                        assert engine.is_alive(sub), (
                            f"{node.query.describe()} alive but "
                            f"{sub.describe()} dead"
                        )


class TestBackendAgreement:
    @SETTINGS
    @given(database=product_databases(), seed=st.integers(0, 10_000))
    def test_memory_and_sqlite_agree(self, database, seed):
        memory = InMemoryEngine(database)
        debugger = NonAnswerDebugger(database, max_joins=2)
        with SqliteEngine(database) as sqlite_engine:
            for text in random_queries(database, seed, count=2):
                report = debugger.debug(text)
                if report.graph is None:
                    continue
                for node in report.graph.nodes:
                    assert memory.is_alive(node.query) == sqlite_engine.is_alive(
                        node.query
                    ), node.query.describe()


class TestStrategyEquivalence:
    @SETTINGS
    @given(database=product_databases(), seed=st.integers(0, 10_000))
    def test_all_strategies_agree_and_reuse_wins(self, database, seed):
        debugger = NonAnswerDebugger(database, max_joins=2)
        for text in random_queries(database, seed, count=2):
            mapping = debugger.map_keywords(text)
            if not mapping.complete or not mapping.keywords:
                continue
            graph = debugger.build_graph(debugger.prune(mapping))
            outcomes = {}
            counts = {}
            for name in STRATEGY_NAMES:
                strategy = get_strategy(name)
                evaluator = debugger.make_evaluator(use_cache=strategy.uses_reuse)
                result = strategy.run(graph, evaluator, database)
                outcomes[name] = result.classification_signature()
                counts[name] = result.stats.queries_executed
            assert len(set(outcomes.values())) == 1, (text, outcomes)
            assert counts["buwr"] <= counts["bu"]
            assert counts["tdwr"] <= counts["td"]


class TestParallelEquivalence:
    @SETTINGS
    @given(
        database=product_databases(),
        seed=st.integers(0, 10_000),
        workers=st.integers(2, 4),
    )
    def test_parallel_runs_are_byte_identical_to_serial(
        self, database, seed, workers
    ):
        """Every strategy run through a worker pool reports the same
        classification signature and executed-query count as its serial
        run -- with no budget, and with a budget that actually binds."""
        from repro.obs import ProbeBudget
        from repro.parallel import ParallelProbeExecutor

        debugger = NonAnswerDebugger(database, max_joins=2)
        with ParallelProbeExecutor(workers=workers) as executor:
            for text in random_queries(database, seed, count=1):
                mapping = debugger.map_keywords(text)
                if not mapping.complete or not mapping.keywords:
                    continue
                graph = debugger.build_graph(debugger.prune(mapping))
                for name in STRATEGY_NAMES:
                    strategy = get_strategy(name)
                    serial = strategy.run(
                        graph,
                        debugger.make_evaluator(use_cache=strategy.uses_reuse),
                        database,
                    )
                    parallel = strategy.run(
                        graph,
                        debugger.make_evaluator(use_cache=strategy.uses_reuse),
                        database,
                        executor=executor,
                    )
                    assert (
                        parallel.classification_signature()
                        == serial.classification_signature()
                    ), (name, text)
                    assert (
                        parallel.stats.queries_executed
                        == serial.stats.queries_executed
                    ), (name, text)
                    # An exhausting budget must bind identically in both modes.
                    cap = max(serial.stats.queries_executed // 2, 1)
                    serial_bounded = strategy.run(
                        graph,
                        debugger.make_evaluator(
                            use_cache=strategy.uses_reuse,
                            budget=ProbeBudget(max_queries=cap),
                        ),
                        database,
                    )
                    parallel_bounded = strategy.run(
                        graph,
                        debugger.make_evaluator(
                            use_cache=strategy.uses_reuse,
                            budget=ProbeBudget(max_queries=cap),
                        ),
                        database,
                        executor=executor,
                    )
                    assert parallel_bounded.stats.queries_executed <= cap
                    assert (
                        parallel_bounded.classification_signature()
                        == serial_bounded.classification_signature()
                    ), (name, text, cap)
                    assert (
                        parallel_bounded.stats.queries_executed
                        == serial_bounded.stats.queries_executed
                    ), (name, text, cap)
                    assert parallel_bounded.exhausted == serial_bounded.exhausted


class TestShardedEquivalence:
    @SETTINGS
    @given(
        database=product_databases(),
        seed=st.integers(0, 10_000),
        shards=st.integers(1, 5),
    )
    def test_sharded_runs_are_byte_identical_to_serial(
        self, database, seed, shards
    ):
        """The sharded executor's merged classifications and MPANs equal
        the plain strategy run's for every shardable strategy -- with no
        budget, and with a carved budget that exhausts mid-shard (where
        sharded-vs-serial-fallback of the same shard plan stays
        byte-identical and every classification is a sound prefix of the
        unbudgeted run).  ``use_processes=False`` exercises the identical
        merge path without fork overhead per example."""
        from repro.core.traversal import SHARDABLE_STRATEGIES
        from repro.obs import ProbeBudget
        from repro.parallel import ShardedLatticeExecutor

        debugger = NonAnswerDebugger(database, max_joins=2)
        executor = ShardedLatticeExecutor(processes=2, shards=shards)

        def sharded_run(name, budget=None):
            return executor.run(
                graph,
                database,
                name,
                backend=debugger.backend_name,
                backend_options=debugger.backend_factory_options,
                budget=budget,
                coordinator_backend=debugger.backend,
                use_processes=False,
            )

        for text in random_queries(database, seed, count=1):
            mapping = debugger.map_keywords(text)
            if not mapping.complete or not mapping.keywords:
                continue
            graph = debugger.build_graph(debugger.prune(mapping))
            for name in SHARDABLE_STRATEGIES:
                strategy = get_strategy(name)
                serial = strategy.run(
                    graph,
                    debugger.make_evaluator(use_cache=strategy.uses_reuse),
                    database,
                )
                merged = sharded_run(name)
                assert (
                    merged.classification_signature()
                    == serial.classification_signature()
                ), (name, text, shards)
                assert not merged.shard_failures
                # Budget exhaustion mid-shard: the two executions of the
                # same carved shard plan agree exactly, and stay sound
                # prefixes of the unbudgeted run.
                cap = max(serial.stats.queries_executed // 2, 1)
                first = sharded_run(name, budget=ProbeBudget(max_queries=cap))
                second = sharded_run(name, budget=ProbeBudget(max_queries=cap))
                assert first.stats.queries_executed <= cap
                assert (
                    first.classification_signature()
                    == second.classification_signature()
                ), (name, text, cap)
                assert first.exhausted == second.exhausted
                assert set(first.alive_mtns) <= set(serial.alive_mtns)
                assert set(first.dead_mtns) <= set(serial.dead_mtns)


class TestBudgetAnytime:
    @SETTINGS
    @given(
        database=product_databases(),
        seed=st.integers(0, 10_000),
        cap=st.integers(0, 12),
    )
    def test_budgeted_runs_are_sound_prefixes(self, database, seed, cap):
        """A budget-bounded run of any strategy reports a subset of the
        unbudgeted run's classifications with identical verdicts, executes
        at most ``cap`` queries, and is flagged ``exhausted`` iff the
        budget actually bound."""
        from repro.obs import ProbeBudget

        debugger = NonAnswerDebugger(database, max_joins=2)
        for text in random_queries(database, seed, count=1):
            mapping = debugger.map_keywords(text)
            if not mapping.complete or not mapping.keywords:
                continue
            graph = debugger.build_graph(debugger.prune(mapping))
            for name in STRATEGY_NAMES:
                strategy = get_strategy(name)
                full = strategy.run(
                    graph,
                    debugger.make_evaluator(use_cache=strategy.uses_reuse),
                    database,
                )
                budget = ProbeBudget(max_queries=cap)
                partial = strategy.run(
                    graph,
                    debugger.make_evaluator(
                        use_cache=strategy.uses_reuse, budget=budget
                    ),
                    database,
                )
                assert partial.stats.queries_executed <= cap
                assert partial.exhausted == budget.bound
                assert partial.exhausted == (
                    cap < full.stats.queries_executed
                ), (name, text)
                assert set(partial.alive_mtns) <= set(full.alive_mtns)
                assert set(partial.dead_mtns) <= set(full.dead_mtns)
                for mtn_index, mpans in partial.mpans.items():
                    assert sorted(mpans) == sorted(full.mpans[mtn_index])
                if not partial.exhausted:
                    assert (
                        partial.classification_signature()
                        == full.classification_signature()
                    )


class TestMtnCnEquivalence:
    @SETTINGS
    @given(database=product_databases(), seed=st.integers(0, 10_000))
    def test_lattice_mtns_equal_candidate_networks(self, database, seed):
        debugger = NonAnswerDebugger(database, max_joins=2)
        for text in random_queries(database, seed, count=2):
            mapping = debugger.map_keywords(text)
            if not mapping.complete or not mapping.keywords:
                continue
            for interpretation in mapping.interpretations:
                pruned = debugger.binder.prune(interpretation)
                mtns = set(find_mtns(pruned))
                cns = set(
                    enumerate_candidate_networks(
                        database.schema, pruned.binding, 3
                    )
                )
                assert mtns == cns


class TestFreeRankNormalization:
    @SETTINGS
    @given(database=product_databases(), seed=st.integers(0, 10_000))
    def test_multi_free_results_superset_and_consistent(self, database, seed):
        """f=2 keeps every f=1 answer/non-answer and all strategies agree."""
        from repro.core.debugger import NonAnswerDebugger

        base = NonAnswerDebugger(database, max_joins=2, use_lattice=False)
        extended = NonAnswerDebugger(
            database, max_joins=2, use_lattice=False, free_copies=2
        )
        for text in random_queries(database, seed, count=1):
            one = base.debug(text)
            two = extended.debug(text)
            if one.graph is None:
                continue
            answers_one = {q.describe_full() for q in one.answers()}
            answers_two = {q.describe_full() for q in two.answers()}
            assert answers_one <= answers_two
            non_answers_one = {q.describe_full() for q in one.non_answers()}
            non_answers_two = {q.describe_full() for q in two.non_answers()}
            assert non_answers_one <= non_answers_two


class TestMpanInvariants:
    @SETTINGS
    @given(database=product_databases(), seed=st.integers(0, 10_000))
    def test_mpans_are_maximal_alive_subnetworks(self, database, seed):
        engine = InMemoryEngine(database)
        debugger = NonAnswerDebugger(database, max_joins=2)
        for text in random_queries(database, seed, count=1):
            report = debugger.debug(text)
            if report.traversal is None:
                continue
            graph = report.graph
            for mtn_index, mpan_indexes in report.traversal.mpans.items():
                mtn = graph.node(mtn_index)
                assert not engine.is_alive(mtn.query)
                for index in mpan_indexes:
                    mpan = graph.node(index)
                    # alive, partial, a sub-network of the dead MTN
                    assert engine.is_alive(mpan.query)
                    assert mpan.tree.is_subtree_of(mtn.tree)
                    assert mpan.tree != mtn.tree
                    # maximal: no alive strict ancestor within the MTN
                    covering = graph.asc_mask[index] & graph.desc_mask[mtn_index]
                    for ancestor in graph.bits(covering):
                        assert not engine.is_alive(graph.node(ancestor).query)
