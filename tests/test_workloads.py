"""Tests for the Table-2 workload and the random workload generator."""

import pytest

from repro.index.inverted import InvertedIndex
from repro.workloads.generator import RandomWorkload
from repro.workloads.queries import TABLE2_QUERIES, query_by_id, table2_workload


class TestTable2:
    def test_ten_queries_in_paper_order(self):
        assert len(TABLE2_QUERIES) == 10
        assert [q.qid for q in table2_workload()] == [f"Q{i}" for i in range(1, 11)]

    def test_query_texts_match_paper(self):
        assert query_by_id("Q1").text == "Widom Trio"
        assert query_by_id("q8").text == "Probabilistic Data Washington"

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            query_by_id("Q11")

    def test_every_keyword_occurs_in_dblife(self, dblife_db):
        """All workload keywords map somewhere ('and' semantics holds)."""
        index = InvertedIndex(dblife_db)
        for query in TABLE2_QUERIES:
            for token in query.text.lower().split():
                assert index.relations_containing(token), (query.qid, token)

    def test_washington_is_ambiguous(self, dblife_db):
        """Q8's 'Washington' occurs in Person, Publication, Organization."""
        index = InvertedIndex(dblife_db)
        assert index.relations_containing("washington") == (
            "Organization",
            "Person",
            "Publication",
        )

    def test_person_names_only_in_person(self, dblife_db):
        index = InvertedIndex(dblife_db)
        for surname in ("widom", "hristidis", "agrawal", "chaudhuri",
                        "derose", "gray", "dewitt"):
            assert index.relations_containing(surname) == ("Person",), surname

    def test_tutorial_only_in_publications(self, dblife_db):
        index = InvertedIndex(dblife_db)
        assert index.relations_containing("tutorial") == ("Publication",)


class TestWorkloadSemantics:
    """The qualitative character of Table 2 on the synthetic snapshot."""

    def test_three_keyword_queries_have_no_level3_mtns(self, dblife_debugger):
        """Entity-carried keywords need >= 5 instances for 3 keywords."""
        for qid in ("Q2", "Q3", "Q8", "Q10"):
            report = dblife_debugger.debug(query_by_id(qid).text)
            assert report.mtn_count == 0, qid

    def test_q5_alive_at_level3(self, dblife_debugger):
        """Gray serves on SIGMOD: a direct relationship exists."""
        report = dblife_debugger.debug(query_by_id("Q5").text)
        assert report.answers()

    def test_q4_dead_at_level3(self, dblife_debugger):
        """DeRose has no direct VLDB relationship."""
        report = dblife_debugger.debug(query_by_id("Q4").text)
        assert report.mtn_count > 0
        assert not report.answers()
        assert report.explanations()

    def test_q4_alive_at_level5(self, dblife_db):
        """...but relationships with more hops exist (via Gray/coauthors)."""
        from repro.core.debugger import NonAnswerDebugger

        debugger = NonAnswerDebugger(dblife_db, max_joins=4, use_lattice=False)
        report = debugger.debug(query_by_id("Q4").text)
        assert report.answers()

    def test_q1_alive_at_level3(self, dblife_debugger):
        report = dblife_debugger.debug(query_by_id("Q1").text)
        assert report.answers()


class TestRandomWorkload:
    def test_deterministic(self, products_index):
        one = RandomWorkload(products_index, seed=3).batch(5)
        two = RandomWorkload(products_index, seed=3).batch(5)
        assert one == two

    def test_keyword_counts(self, products_index):
        workload = RandomWorkload(products_index, min_keywords=2, max_keywords=2)
        for query in workload.batch(10):
            assert len(query.split()) == 2

    def test_vocabulary_membership(self, products_index):
        vocabulary = set(products_index.tokens())
        workload = RandomWorkload(products_index)
        for query in workload.batch(10):
            assert set(query.split()) <= vocabulary

    def test_missing_injection(self, products_index):
        workload = RandomWorkload(
            products_index, seed=1, missing_probability=1.0
        )
        assert "zzzmissingzzz" in workload.next_query()

    def test_invalid_bounds(self, products_index):
        with pytest.raises(ValueError):
            RandomWorkload(products_index, min_keywords=0)
        with pytest.raises(ValueError):
            RandomWorkload(products_index, min_keywords=3, max_keywords=2)
