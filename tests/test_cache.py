"""Tests for the persistent two-tier probe cache (identity, repair, L2)."""

from __future__ import annotations

import threading

import pytest

from repro.cache import (
    STATUS_CACHE_FILENAME,
    ProbeCache,
    ProbeCacheError,
    clear_cache_dir,
    inspect_cache_dir,
)
from repro.cache.keys import query_cache_key
from repro.core.debugger import NonAnswerDebugger
from repro.core.session import DebugSession
from repro.datasets.products import product_database
from repro.obs import ProbeBudget, ProbeTracer
from repro.relational.evaluator import InstrumentedEvaluator
from repro.relational.jointree import BoundQuery, JoinTree, RelationInstance
from repro.relational.predicates import MatchMode


@pytest.fixture()
def products_probes(products_debugger):
    mapping = products_debugger.map_keywords("saffron scented candle")
    graph = products_debugger.build_graph(products_debugger.prune(mapping))
    return [graph.node(index).query for index in range(len(graph))]


def single_relation_probe(relation: str, keyword: str) -> BoundQuery:
    """A one-node bound query: enough identity for cache-policy tests."""
    instance = RelationInstance(relation, 1)
    tree = JoinTree.single(instance)
    return BoundQuery.from_mapping(tree, {instance: keyword}, MatchMode.TOKEN)


class CountingBackend:
    """Delegates to the in-memory engine, counting backend executions."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0
        self._lock = threading.Lock()

    def is_alive(self, query):
        with self._lock:
            self.calls += 1
        return self.inner.is_alive(query)


class RecordingStore:
    """ProbeStore fake that records every get/put."""

    def __init__(self):
        self.gets = []
        self.puts = []

    def get(self, query):
        self.gets.append(query)
        return None

    def put(self, query, alive):
        self.puts.append((query, alive))


# -------------------------------------------------------------- fingerprint
class TestFingerprint:
    def test_deterministic_across_builds(self, products_db):
        rebuilt = product_database()
        assert products_db.fingerprint() == rebuilt.fingerprint()
        assert products_db.fingerprint() == products_db.fingerprint()

    def test_mutation_changes_fingerprint(self):
        database = product_database()
        before = database.fingerprint()
        table = next(database.iter_tables())
        database.insert(table.relation.name, list(table)[0])
        assert database.fingerprint() != before


class TestQueryCacheKey:
    def test_equal_queries_share_a_key(self, products_db, products_probes):
        schema = products_db.schema
        for probe in products_probes:
            assert query_cache_key(probe, schema) == query_cache_key(probe, schema)

    def test_distinct_queries_get_distinct_keys(self, products_db, products_probes):
        schema = products_db.schema
        keys = {query_cache_key(probe, schema) for probe in products_probes}
        assert len(keys) == len(products_probes)


# -------------------------------------------------------------------- store
class TestProbeCache:
    def test_roundtrip_and_persistence(self, tmp_path, products_probes):
        database = product_database()
        probe = products_probes[0]
        with ProbeCache.open_dir(tmp_path, database) as cache:
            assert cache.get(probe) is None
            cache.put(probe, True)
            assert cache.get(probe) is True
            cache.put(probe, False)  # last write wins
            assert cache.get(probe) is False
            assert len(cache) == 1
            stats = cache.stats()
            assert stats.hits == 2 and stats.misses == 1 and stats.writes == 2
            assert stats.composite == database.fingerprint()
        # A fresh process sees the same answers.
        with ProbeCache.open_dir(tmp_path, database) as reopened:
            assert reopened.get(probe) is False
            assert len(reopened) == 1
            assert not reopened.last_repair.changed

    def test_clear_and_closed_errors(self, tmp_path, products_probes):
        cache = ProbeCache.open_dir(tmp_path, product_database())
        cache.put(products_probes[0], True)
        assert cache.clear() == 1
        assert len(cache) == 0
        cache.close()
        cache.close()  # idempotent
        with pytest.raises(ProbeCacheError, match="closed"):
            cache.get(products_probes[0])

    def test_dir_level_inspect_and_clear(self, tmp_path, products_probes):
        assert inspect_cache_dir(tmp_path)["exists"] is False
        assert clear_cache_dir(tmp_path) == 0
        with ProbeCache.open_dir(tmp_path, product_database()) as cache:
            cache.put(products_probes[0], True)
            cache.put(products_probes[1], False)
        info = inspect_cache_dir(tmp_path)
        assert info["exists"] and info["entries"] == 2
        assert sum(v["entries"] for v in info["vectors"].values()) == 2
        assert sum(v["alive"] for v in info["vectors"].values()) == 1
        for entry in info["vectors"].values():
            assert entry["relations"]  # the join path is recorded per row
        assert clear_cache_dir(tmp_path) == 2
        assert inspect_cache_dir(tmp_path)["entries"] == 0


# ------------------------------------------------------------------ repair
class TestMonotoneRepair:
    """Attach-time repair: survivors and evictions per delta direction."""

    def seed(self, tmp_path, database):
        """Four rows: alive/dead through Item, alive/dead avoiding Item."""
        probes = {
            "item_alive": single_relation_probe("Item", "saffron"),
            "item_dead": single_relation_probe("Item", "zzz-absent"),
            "other_alive": single_relation_probe("ProductType", "candle"),
            "other_dead": single_relation_probe("ProductType", "zzz-absent"),
        }
        with ProbeCache.open_dir(tmp_path, database) as cache:
            for name, probe in probes.items():
                cache.put(probe, name.endswith("alive"))
        return probes

    def test_insert_only_delta_keeps_alive_rows(self, tmp_path):
        database = product_database()
        probes = self.seed(tmp_path, database)
        database.insert("Item", list(database.table("Item"))[0])
        with ProbeCache.open_dir(tmp_path, database) as cache:
            report = cache.last_repair
            assert report.changed
            assert dict(report.directions) == {"Item": "insert_only"}
            assert report.repaired == 1 and report.evicted == 1
            # Alive through the mutated relation: monotone, survives.
            assert cache.get(probes["item_alive"]) is True
            # Dead through it: an insert may have revived it -> evicted.
            assert cache.get(probes["item_dead"]) is None
            # Probes avoiding the mutated relation keep their key: warm.
            assert cache.get(probes["other_alive"]) is True
            assert cache.get(probes["other_dead"]) is False

    def test_delete_only_delta_keeps_dead_rows(self, tmp_path):
        database = product_database()
        probes = self.seed(tmp_path, database)
        database.delete("Item", 0)
        with ProbeCache.open_dir(tmp_path, database) as cache:
            report = cache.last_repair
            assert dict(report.directions) == {"Item": "delete_only"}
            # Dead through the mutated relation: a delete cannot revive.
            assert cache.get(probes["item_dead"]) is False
            # Alive through it: its witness may be gone -> evicted.
            assert cache.get(probes["item_alive"]) is None
            assert cache.get(probes["other_alive"]) is True
            assert cache.get(probes["other_dead"]) is False

    def test_mixed_delta_evicts_both_polarities(self, tmp_path):
        database = product_database()
        probes = self.seed(tmp_path, database)
        database.insert("Item", list(database.table("Item"))[0])
        database.delete("Item", 0)
        # Counters moved on both axes and content differs (the deleted
        # row is not the inserted one): direction is mixed.
        with ProbeCache.open_dir(tmp_path, database) as cache:
            assert dict(cache.last_repair.directions) == {"Item": "mixed"}
            assert cache.get(probes["item_alive"]) is None
            assert cache.get(probes["item_dead"]) is None
            assert cache.get(probes["other_alive"]) is True
            assert cache.get(probes["other_dead"]) is False

    def test_foreign_lineage_mutation_downgrades_to_mixed(self, tmp_path):
        probes = self.seed(tmp_path, product_database())
        # A *rebuilt* database with one extra row: the counters are not
        # comparable (fresh lineage), so even a pure insert is treated
        # as mixed and both Item polarities are evicted.
        rebuilt = product_database()
        rebuilt.insert("Item", list(rebuilt.table("Item"))[0])
        with ProbeCache.open_dir(tmp_path, rebuilt) as cache:
            assert dict(cache.last_repair.directions) == {"Item": "mixed"}
            assert cache.get(probes["item_alive"]) is None
            assert cache.get(probes["item_dead"]) is None
            assert cache.get(probes["other_alive"]) is True
            assert cache.get(probes["other_dead"]) is False

    def test_identical_rebuild_stays_fully_warm(self, tmp_path):
        probes = self.seed(tmp_path, product_database())
        # Identical content under a fresh lineage: composite matches, no
        # repair runs, and every row (both polarities) answers.
        with ProbeCache.open_dir(tmp_path, product_database()) as cache:
            assert not cache.last_repair.changed
            assert cache.last_repair.repaired == 0
            assert cache.get(probes["item_alive"]) is True
            assert cache.get(probes["item_dead"]) is False

    def test_in_session_refresh_repairs_without_reopen(self, tmp_path):
        database = product_database()
        probe_alive = single_relation_probe("Item", "saffron")
        probe_dead = single_relation_probe("Item", "zzz-absent")
        with ProbeCache.open_dir(tmp_path, database) as cache:
            cache.put(probe_alive, True)
            cache.put(probe_dead, False)
            database.insert("Item", list(database.table("Item"))[0])
            # Reads key on live fingerprints: stale rows are invisible
            # (missed) even before any repair runs.
            assert cache.get(probe_alive) is None
            report = cache.refresh()
            assert dict(report.directions) == {"Item": "insert_only"}
            assert cache.get(probe_alive) is True
            assert cache.get(probe_dead) is None

    def test_concurrent_mutation_never_serves_stale_dead(self, tmp_path):
        """Two threads -- one inserts, one probes -- across a repair.

        After the insert is visible (Event ordering), a get for a dead
        probe through the mutated relation must never answer ``False``
        again: first it misses (new vector), after repair it stays
        evicted.  The alive probe may miss mid-window but must never
        flip and ends up repaired back to ``True``.
        """
        database = product_database()
        probe_alive = single_relation_probe("Item", "saffron")
        probe_dead = single_relation_probe("Item", "zzz-absent")
        mutated = threading.Event()
        done = threading.Event()
        violations = []
        with ProbeCache.open_dir(tmp_path, database) as cache:
            cache.put(probe_alive, True)
            cache.put(probe_dead, False)

            def prober():
                while not done.is_set():
                    after = mutated.is_set()
                    dead_value = cache.get(probe_dead)
                    alive_value = cache.get(probe_alive)
                    if after and dead_value is False:
                        violations.append("stale dead served after insert")
                    if alive_value is False:
                        violations.append("alive row flipped")

            thread = threading.Thread(target=prober)
            thread.start()
            try:
                database.insert("Item", list(database.table("Item"))[0])
                mutated.set()
                cache.refresh()
            finally:
                done.set()
                thread.join()
            assert violations == []
            assert cache.get(probe_alive) is True
            assert cache.get(probe_dead) is None


# ----------------------------------------------------------- evaluator tiers
class TestEvaluatorTiers:
    def make(self, products_debugger, cache, tracer=None, budget=None):
        backend = CountingBackend(products_debugger.backend)
        evaluator = InstrumentedEvaluator(
            backend, probe_cache=cache, tracer=tracer, budget=budget
        )
        return backend, evaluator

    def test_l1_then_l2_then_backend(self, tmp_path, products_debugger, products_probes):
        cache = ProbeCache.open_dir(tmp_path, product_database())
        tracer = ProbeTracer()
        backend, cold = self.make(products_debugger, cache, tracer)
        probe = products_probes[0]

        alive = cold.is_alive(probe)
        assert backend.calls == 1
        assert cold.is_alive(probe) is alive  # L1 hit
        assert backend.calls == 1
        assert cold.stats.l1_hits == 1 and cold.stats.l2_hits == 0
        assert cold.stats.cache_hits == 1

        # Fresh evaluator (empty L1), same store: L2 answers, then promotes.
        warm_backend, warm = self.make(products_debugger, cache, tracer)
        assert warm.is_alive(probe) is alive
        assert warm_backend.calls == 0
        assert warm.stats.l2_hits == 1 and warm.stats.queries_executed == 0
        assert warm.stats.cache_misses == 0
        assert warm.is_alive(probe) is alive  # promoted into L1
        assert warm.stats.l1_hits == 1

        tiers = [span.cache_tier for span in tracer.spans]
        assert tiers == ["backend", "l1", "l2", "l1"]
        assert "L2 1" in str(warm.stats)
        cache.close()

    def test_l2_hits_are_budget_free(
        self, tmp_path, products_debugger, products_probes
    ):
        cache = ProbeCache.open_dir(tmp_path, product_database())
        for probe in products_probes:
            cache.put(probe, products_debugger.backend.is_alive(probe))
        budget = ProbeBudget(max_queries=1)
        backend, warm = self.make(products_debugger, cache, budget=budget)
        for probe in products_probes:  # many more probes than the budget
            warm.is_alive(probe)
        assert backend.calls == 0
        assert budget.queries_used == 0
        cache.close()

    def test_non_reuse_evaluator_ignores_the_store(
        self, products_debugger, products_probes
    ):
        store = RecordingStore()
        backend = CountingBackend(products_debugger.backend)
        evaluator = InstrumentedEvaluator(
            backend, use_cache=False, probe_cache=store
        )
        evaluator.is_alive(products_probes[0])
        evaluator.is_alive(products_probes[0])
        assert backend.calls == 2  # re-executed, as BU/TD semantics require
        assert store.gets == [] and store.puts == []

    def test_trace_spans_validate_with_cache_tier(
        self, tmp_path, products_debugger, products_probes
    ):
        from repro.obs import validate_trace_record

        cache = ProbeCache.open_dir(tmp_path, product_database())
        tracer = ProbeTracer()
        _, evaluator = self.make(products_debugger, cache, tracer)
        evaluator.is_alive(products_probes[0])
        evaluator.is_alive(products_probes[0])
        for record in tracer.records:
            payload = record.to_dict()
            assert validate_trace_record(payload) == "span"
            assert payload["cache_tier"] in ("backend", "l1", "l2")
        cache.close()


# --------------------------------------------------------- warm-start, e2e
class TestWarmStart:
    QUERY = "saffron scented candle"

    def test_exact_repeat_skips_phase3_entirely(self, tmp_path):
        cache_dir = tmp_path / "probe-cache"
        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=cache_dir
        ) as cold:
            cold_report = cold.debug(self.QUERY)
        assert cold_report.traversal.stats.queries_executed > 0

        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=cache_dir
        ) as warm:
            warm_report = warm.debug(self.QUERY)
        stats = warm_report.traversal.stats
        # Phase 3 was *skipped*, not replayed: no probes at all, so no
        # backend queries and no cache traffic either.
        assert stats.queries_executed == 0
        assert stats.l2_hits == 0 and stats.l1_hits == 0
        assert (
            warm_report.traversal.classification_signature()
            == cold_report.traversal.classification_signature()
        )
        assert {q.describe() for q in warm_report.non_answers()} == {
            q.describe() for q in cold_report.non_answers()
        }
        assert [
            [m.describe() for m in mpans]
            for _, mpans in warm_report.explanations()
        ] == [
            [m.describe() for m in mpans]
            for _, mpans in cold_report.explanations()
        ]

    def test_second_session_answers_from_l2(self, tmp_path):
        cache_dir = tmp_path / "probe-cache"
        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=cache_dir
        ) as cold:
            cold_report = cold.debug(self.QUERY)
        # Without the status store the skip is off the table; the L2
        # probe tier must carry the whole warm run by itself.
        (cache_dir / STATUS_CACHE_FILENAME).unlink()
        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=cache_dir
        ) as warm:
            warm_report = warm.debug(self.QUERY)
        stats = warm_report.traversal.stats
        assert stats.queries_executed == 0
        assert stats.l2_hits > 0
        assert (
            warm_report.traversal.classification_signature()
            == cold_report.traversal.classification_signature()
        )

    def test_insert_only_mutation_repairs_instead_of_evicting(self, tmp_path):
        cache_dir = tmp_path / "probe-cache"
        database = product_database()
        with NonAnswerDebugger(
            database, max_joins=2, cache_dir=cache_dir
        ) as cold:
            cold_report = cold.debug(self.QUERY)
        cold_executed = cold_report.traversal.stats.queries_executed
        assert cold_executed > 0

        # Duplicate an existing Item row on the *live* database: content
        # changes (fingerprint counts rows) but no probe's truth does.
        database.insert("Item", list(database.table("Item"))[0])

        with NonAnswerDebugger(
            database, max_joins=2, cache_dir=cache_dir
        ) as warm:
            report = warm.probe_cache.last_repair
            assert dict(report.directions) == {"Item": "insert_only"}
            assert report.repaired > 0
            warm_report = warm.debug(self.QUERY)
        stats = warm_report.traversal.stats
        # Evicted dead-through-Item rows re-execute; survivors stay warm.
        assert 0 < stats.queries_executed < cold_executed
        assert (
            warm_report.traversal.classification_signature()
            == cold_report.traversal.classification_signature()
        )

    def test_cross_lineage_mutation_evicts_touching_probes(self, tmp_path):
        cache_dir = tmp_path / "probe-cache"
        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=cache_dir
        ) as cold:
            cold.debug(self.QUERY)

        mutated = product_database()
        mutated.insert("Item", list(mutated.table("Item"))[0])
        assert mutated.fingerprint() != product_database().fingerprint()
        with NonAnswerDebugger(
            mutated, max_joins=2, cache_dir=cache_dir
        ) as fresh:
            report = fresh.probe_cache.last_repair
            # Rebuilt database: the insert cannot be proven insert-only.
            assert report.directions.get("Item") == "mixed"
            assert report.evicted > 0
            fresh_report = fresh.debug(self.QUERY)
        assert fresh_report.traversal.stats.queries_executed > 0

    def test_debug_session_inherits_cache_and_status(self, tmp_path):
        cache_dir = tmp_path / "probe-cache"
        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=cache_dir
        ) as cold:
            with DebugSession(cold, self.QUERY) as cold_session:
                cold_session.explain_all()
        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=cache_dir
        ) as warm:
            with DebugSession(warm, self.QUERY) as warm_session:
                # The persisted StatusStore pre-classifies the whole graph.
                assert warm_session.preloaded > 0
                warm_session.explain_all()
                assert warm_session.evaluator.stats.queries_executed == 0

    def test_debugger_without_cache_dir_has_no_store(self, products_debugger):
        assert products_debugger.probe_cache is None
        assert products_debugger.status_cache is None
        assert products_debugger.make_evaluator().probe_cache is None


# ------------------------------------------------------------------- bench
class TestCacheBench:
    def test_cache_bench_smoke(self, tmp_path):
        from repro.bench.cache import run_cache_bench
        from repro.bench.context import BenchContext

        table, payload = run_cache_bench(
            BenchContext.create(),
            level=3,
            cache_dir=tmp_path,
            latency=0.0,
            strategies=("sbh",),
        )
        assert payload["signatures_match"]
        assert payload["warm_queries_total"] == 0
        assert payload["query_speedup"] >= payload["speedup_gate"]
        assert payload["passed"]
        assert "sbh" in table.render()

    def test_mutate_bench_smoke(self, tmp_path):
        from repro.bench.context import BenchContext
        from repro.bench.mutate import run_mutate_bench

        table, payload = run_mutate_bench(
            BenchContext.create(),
            level=3,
            cache_dir=tmp_path,
            latency=0.0,
            strategies=("sbh",),
        )
        assert payload["signatures_match"]
        assert payload["delta_insert_only"]
        assert payload["warm_queries_total"] < payload["cold_queries_total"]
        assert payload["repaired_total"] > 0
        assert "Publication" in table.render()
