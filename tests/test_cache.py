"""Tests for the persistent two-tier probe cache (fingerprint, store, L2)."""

from __future__ import annotations

import threading

import pytest

from repro.cache import ProbeCache, ProbeCacheError, clear_cache_dir, inspect_cache_dir
from repro.cache.keys import query_cache_key
from repro.core.debugger import NonAnswerDebugger
from repro.core.session import DebugSession
from repro.datasets.products import product_database
from repro.obs import ProbeBudget, ProbeTracer
from repro.relational.evaluator import InstrumentedEvaluator


@pytest.fixture()
def products_probes(products_debugger):
    mapping = products_debugger.map_keywords("saffron scented candle")
    graph = products_debugger.build_graph(products_debugger.prune(mapping))
    return [graph.node(index).query for index in range(len(graph))]


class CountingBackend:
    """Delegates to the in-memory engine, counting backend executions."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0
        self._lock = threading.Lock()

    def is_alive(self, query):
        with self._lock:
            self.calls += 1
        return self.inner.is_alive(query)


class RecordingStore:
    """ProbeStore fake that records every get/put."""

    def __init__(self):
        self.gets = []
        self.puts = []

    def get(self, query):
        self.gets.append(query)
        return None

    def put(self, query, alive):
        self.puts.append((query, alive))


# -------------------------------------------------------------- fingerprint
class TestFingerprint:
    def test_deterministic_across_builds(self, products_db):
        rebuilt = product_database()
        assert products_db.fingerprint() == rebuilt.fingerprint()
        assert products_db.fingerprint() == products_db.fingerprint()

    def test_mutation_changes_fingerprint(self):
        database = product_database()
        before = database.fingerprint()
        table = next(database.iter_tables())
        database.insert(table.relation.name, list(table)[0])
        assert database.fingerprint() != before


class TestQueryCacheKey:
    def test_equal_queries_share_a_key(self, products_db, products_probes):
        schema = products_db.schema
        for probe in products_probes:
            assert query_cache_key(probe, schema) == query_cache_key(probe, schema)

    def test_distinct_queries_get_distinct_keys(self, products_db, products_probes):
        schema = products_db.schema
        keys = {query_cache_key(probe, schema) for probe in products_probes}
        assert len(keys) == len(products_probes)


# -------------------------------------------------------------------- store
class TestProbeCache:
    def test_roundtrip_and_persistence(self, tmp_path, products_db, products_probes):
        schema = products_db.schema
        fingerprint = products_db.fingerprint()
        probe = products_probes[0]
        with ProbeCache.open_dir(tmp_path, schema, fingerprint) as cache:
            assert cache.get(probe) is None
            cache.put(probe, True)
            assert cache.get(probe) is True
            cache.put(probe, False)  # last write wins
            assert cache.get(probe) is False
            assert len(cache) == 1
            stats = cache.stats()
            assert stats.hits == 2 and stats.misses == 1 and stats.writes == 2
        # A fresh process sees the same answers.
        with ProbeCache.open_dir(tmp_path, schema, fingerprint) as reopened:
            assert reopened.get(probe) is False
            assert len(reopened) == 1

    def test_stale_fingerprint_evicted_on_attach(
        self, tmp_path, products_db, products_probes
    ):
        schema = products_db.schema
        probe = products_probes[0]
        with ProbeCache.open_dir(tmp_path, schema, "fp-old") as cache:
            cache.put(probe, True)
        with ProbeCache.open_dir(tmp_path, schema, "fp-new") as cache:
            assert cache.stale_evicted == 1
            assert cache.get(probe) is None
            assert len(cache) == 0

    def test_clear_and_closed_errors(self, tmp_path, products_db, products_probes):
        schema = products_db.schema
        cache = ProbeCache.open_dir(tmp_path, schema, "fp")
        cache.put(products_probes[0], True)
        assert cache.clear() == 1
        assert len(cache) == 0
        cache.close()
        cache.close()  # idempotent
        with pytest.raises(ProbeCacheError, match="closed"):
            cache.get(products_probes[0])

    def test_dir_level_inspect_and_clear(
        self, tmp_path, products_db, products_probes
    ):
        assert inspect_cache_dir(tmp_path)["exists"] is False
        assert clear_cache_dir(tmp_path) == 0
        with ProbeCache.open_dir(tmp_path, products_db.schema, "fp") as cache:
            cache.put(products_probes[0], True)
            cache.put(products_probes[1], False)
        info = inspect_cache_dir(tmp_path)
        assert info["exists"] and info["entries"] == 2
        assert info["fingerprints"]["fp"] == {"entries": 2, "alive": 1}
        assert clear_cache_dir(tmp_path) == 2
        assert inspect_cache_dir(tmp_path)["entries"] == 0


# ----------------------------------------------------------- evaluator tiers
class TestEvaluatorTiers:
    def make(self, products_debugger, cache, tracer=None, budget=None):
        backend = CountingBackend(products_debugger.backend)
        evaluator = InstrumentedEvaluator(
            backend, probe_cache=cache, tracer=tracer, budget=budget
        )
        return backend, evaluator

    def test_l1_then_l2_then_backend(self, tmp_path, products_db, products_debugger, products_probes):
        cache = ProbeCache.open_dir(
            tmp_path, products_db.schema, products_db.fingerprint()
        )
        tracer = ProbeTracer()
        backend, cold = self.make(products_debugger, cache, tracer)
        probe = products_probes[0]

        alive = cold.is_alive(probe)
        assert backend.calls == 1
        assert cold.is_alive(probe) is alive  # L1 hit
        assert backend.calls == 1
        assert cold.stats.l1_hits == 1 and cold.stats.l2_hits == 0
        assert cold.stats.cache_hits == 1

        # Fresh evaluator (empty L1), same store: L2 answers, then promotes.
        warm_backend, warm = self.make(products_debugger, cache, tracer)
        assert warm.is_alive(probe) is alive
        assert warm_backend.calls == 0
        assert warm.stats.l2_hits == 1 and warm.stats.queries_executed == 0
        assert warm.stats.cache_misses == 0
        assert warm.is_alive(probe) is alive  # promoted into L1
        assert warm.stats.l1_hits == 1

        tiers = [span.cache_tier for span in tracer.spans]
        assert tiers == ["backend", "l1", "l2", "l1"]
        assert "L2 1" in str(warm.stats)
        cache.close()

    def test_l2_hits_are_budget_free(
        self, tmp_path, products_db, products_debugger, products_probes
    ):
        cache = ProbeCache.open_dir(
            tmp_path, products_db.schema, products_db.fingerprint()
        )
        for probe in products_probes:
            cache.put(probe, products_debugger.backend.is_alive(probe))
        budget = ProbeBudget(max_queries=1)
        backend, warm = self.make(products_debugger, cache, budget=budget)
        for probe in products_probes:  # many more probes than the budget
            warm.is_alive(probe)
        assert backend.calls == 0
        assert budget.queries_used == 0
        cache.close()

    def test_non_reuse_evaluator_ignores_the_store(
        self, products_debugger, products_probes
    ):
        store = RecordingStore()
        backend = CountingBackend(products_debugger.backend)
        evaluator = InstrumentedEvaluator(
            backend, use_cache=False, probe_cache=store
        )
        evaluator.is_alive(products_probes[0])
        evaluator.is_alive(products_probes[0])
        assert backend.calls == 2  # re-executed, as BU/TD semantics require
        assert store.gets == [] and store.puts == []

    def test_trace_spans_validate_with_cache_tier(
        self, tmp_path, products_db, products_debugger, products_probes
    ):
        from repro.obs import validate_trace_record

        cache = ProbeCache.open_dir(
            tmp_path, products_db.schema, products_db.fingerprint()
        )
        tracer = ProbeTracer()
        _, evaluator = self.make(products_debugger, cache, tracer)
        evaluator.is_alive(products_probes[0])
        evaluator.is_alive(products_probes[0])
        for record in tracer.records:
            payload = record.to_dict()
            assert validate_trace_record(payload) == "span"
            assert payload["cache_tier"] in ("backend", "l1", "l2")
        cache.close()


# --------------------------------------------------------- warm-start, e2e
class TestWarmStart:
    QUERY = "saffron scented candle"

    def test_second_debugger_session_executes_zero_queries(self, tmp_path):
        cache_dir = tmp_path / "probe-cache"
        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=cache_dir
        ) as cold:
            cold_report = cold.debug(self.QUERY)
        assert cold_report.traversal.stats.queries_executed > 0

        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=cache_dir
        ) as warm:
            warm_report = warm.debug(self.QUERY)
        stats = warm_report.traversal.stats
        assert stats.queries_executed == 0
        assert stats.l2_hits > 0
        assert (
            warm_report.traversal.classification_signature()
            == cold_report.traversal.classification_signature()
        )
        assert {q.describe() for q in warm_report.non_answers()} == {
            q.describe() for q in cold_report.non_answers()
        }
        assert [
            [m.describe() for m in mpans]
            for _, mpans in warm_report.explanations()
        ] == [
            [m.describe() for m in mpans]
            for _, mpans in cold_report.explanations()
        ]

    def test_mutated_dataset_invalidates_the_cache(self, tmp_path):
        cache_dir = tmp_path / "probe-cache"
        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=cache_dir
        ) as cold:
            cold.debug(self.QUERY)

        mutated = product_database()
        table = next(mutated.iter_tables())
        mutated.insert(table.relation.name, list(table)[0])
        assert mutated.fingerprint() != product_database().fingerprint()
        with NonAnswerDebugger(
            mutated, max_joins=2, cache_dir=cache_dir
        ) as fresh:
            assert fresh.probe_cache.stale_evicted > 0
            report = fresh.debug(self.QUERY)
        assert report.traversal.stats.queries_executed > 0
        assert report.traversal.stats.l2_hits == 0

    def test_debug_session_inherits_the_cache(self, tmp_path):
        cache_dir = tmp_path / "probe-cache"
        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=cache_dir
        ) as cold:
            cold_session = DebugSession(cold, self.QUERY)
            cold_session.explain_all()
        with NonAnswerDebugger(
            product_database(), max_joins=2, cache_dir=cache_dir
        ) as warm:
            warm_session = DebugSession(warm, self.QUERY)
            warm_session.explain_all()
            assert warm_session.evaluator.stats.queries_executed == 0
            assert warm_session.evaluator.stats.l2_hits > 0

    def test_debugger_without_cache_dir_has_no_store(self, products_debugger):
        assert products_debugger.probe_cache is None
        assert products_debugger.make_evaluator().probe_cache is None


# ------------------------------------------------------------------- bench
class TestCacheBench:
    def test_cache_bench_smoke(self, tmp_path):
        from repro.bench.cache import run_cache_bench
        from repro.bench.context import BenchContext

        table, payload = run_cache_bench(
            BenchContext.create(),
            level=3,
            cache_dir=tmp_path,
            latency=0.0,
            strategies=("sbh",),
        )
        assert payload["signatures_match"]
        assert payload["warm_queries_total"] == 0
        assert payload["query_speedup"] >= payload["speedup_gate"]
        assert payload["passed"]
        assert "sbh" in table.render()
