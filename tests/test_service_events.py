"""Tests for the per-session event log feeding the service layer."""

import threading

import pytest

from repro.obs.trace import ProbeTracer
from repro.service.events import TERMINAL_EVENTS, SessionEventLog


def make_log(session_id="s1"):
    """A log fed by a real tracer, exactly as the manager wires it."""
    log = SessionEventLog(session_id)
    tracer = ProbeTracer(listener=log.append)
    tracer.set_context(session_id=session_id)
    return log, tracer


class TestAppend:
    def test_records_arrive_in_seq_order(self):
        log, tracer = make_log()
        tracer.record_event("session_submitted", query="q")
        tracer.record_event("session_started")
        seqs = [record["seq"] for record in log.snapshot()]
        assert seqs == [0, 1]

    def test_records_are_schema_valid_dicts(self):
        log, tracer = make_log()
        tracer.record_event("session_submitted", query="q")
        record = log.snapshot()[0]
        assert record["kind"] == "event"
        assert record["session_id"] == "s1"

    def test_terminal_flips_once(self):
        log, tracer = make_log()
        assert not log.terminal
        tracer.record_event("session_completed")
        assert log.terminal

    def test_append_after_terminal_rejected(self):
        log, tracer = make_log()
        tracer.record_event("session_completed")
        with pytest.raises(RuntimeError, match="terminal"):
            tracer.record_event("session_started")

    def test_every_terminal_name_recognised(self):
        for name in TERMINAL_EVENTS:
            log, tracer = make_log()
            tracer.record_event(name)
            assert log.terminal, name


class TestEventsAfter:
    def test_cursor_excludes_already_seen(self):
        log, tracer = make_log()
        tracer.record_event("session_submitted", query="q")
        tracer.record_event("session_started")
        records, _ = log.events_after(0)
        assert [record["seq"] for record in records] == [1]

    def test_default_cursor_returns_everything(self):
        log, tracer = make_log()
        tracer.record_event("session_submitted", query="q")
        records, terminal = log.events_after()
        assert len(records) == 1
        assert not terminal

    def test_terminal_flag_reported(self):
        log, tracer = make_log()
        tracer.record_event("session_completed")
        _, terminal = log.events_after()
        assert terminal

    def test_wait_wakes_on_append(self):
        log, tracer = make_log()
        results = []

        def poll():
            records, _ = log.events_after(-1, wait_seconds=5.0)
            results.append(records)

        thread = threading.Thread(target=poll)
        thread.start()
        tracer.record_event("session_submitted", query="q")
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(results[0]) == 1

    def test_wait_times_out_empty(self):
        log, _ = make_log()
        records, terminal = log.events_after(-1, wait_seconds=0.05)
        assert records == []
        assert not terminal


class TestFollow:
    def test_follow_ends_at_terminal(self):
        log, tracer = make_log()
        tracer.record_event("session_submitted", query="q")
        tracer.record_event("session_completed")
        names = [record["name"] for record in log.follow()]
        assert names == ["session_submitted", "session_completed"]

    def test_follow_sees_appends_while_following(self):
        log, tracer = make_log()
        tracer.record_event("session_submitted", query="q")

        def finish():
            tracer.record_event("session_completed")

        timer = threading.Timer(0.05, finish)
        timer.start()
        try:
            names = [record["name"] for record in log.follow(poll_seconds=0.01)]
        finally:
            timer.cancel()
        assert names[-1] == "session_completed"

    def test_jsonl_lines_roundtrip(self):
        import json

        log, tracer = make_log()
        tracer.record_event("session_submitted", query="q")
        tracer.record_event("session_completed")
        parsed = [json.loads(line) for line in log.jsonl_lines()]
        assert [record["seq"] for record in parsed] == [0, 1]
