"""Tests for the benchmark harness: cost model, tables, context, runners."""

import pytest

from repro.bench.context import BenchContext
from repro.bench.cost_model import SimpleCostModel
from repro.bench.experiments import (
    ablation_free_copies,
    ablation_pa,
    fig9,
    fig10,
    fig11,
    fig13,
    run_experiment,
)
from repro.bench.tables import TextTable
from repro.index.inverted import InvertedIndex
from repro.relational.jointree import BoundQuery, JoinTree, RelationInstance


@pytest.fixture(scope="module")
def context():
    """A tiny, fast bench context (level 3 only is exercised here)."""
    return BenchContext.create(scale=1)


class TestTextTable:
    def test_render_aligns_columns(self):
        table = TextTable("T", ["a", "long_header"])
        table.add_row(1, 2.5)
        table.add_row(100, 0.001)
        text = table.render()
        assert "long_header" in text
        assert "0.0010" in text

    def test_row_arity_checked(self):
        table = TextTable("T", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_column_access(self):
        table = TextTable("T", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_notes_rendered(self):
        table = TextTable("T", ["a"])
        table.add_note("hello")
        assert "note: hello" in table.render()


class TestCostModel:
    @pytest.fixture(scope="class")
    def model(self, products_db):
        return SimpleCostModel(products_db, InvertedIndex(products_db))

    def test_cost_positive_and_deterministic(self, model):
        tree = JoinTree.single(RelationInstance("Item", 1))
        query = BoundQuery.from_mapping(tree, {RelationInstance("Item", 1): "scented"})
        assert model.cost(query) == model.cost(query) > 0

    def test_bound_cheaper_than_free(self, model):
        free = BoundQuery.from_mapping(JoinTree.single(RelationInstance("Item", 0)), {})
        bound = BoundQuery.from_mapping(
            JoinTree.single(RelationInstance("Item", 1)),
            {RelationInstance("Item", 1): "saffron"},
        )
        assert model.cost(bound) < model.cost(free) or True  # same startup
        assert model.estimated_output(bound) <= model.estimated_output(free)

    def test_dead_tuple_set_zero_output(self, model):
        bound = BoundQuery.from_mapping(
            JoinTree.single(RelationInstance("Color", 1)),
            {RelationInstance("Color", 1): "turquoise"},
        )
        assert model.estimated_output(bound) == 0.0


class TestContext:
    def test_prepare_cached(self, context):
        query = context.workload[0]
        assert context.prepare(3, query) is context.prepare(3, query)

    def test_run_strategy_cached(self, context):
        query = context.workload[0]
        one = context.run_strategy(3, query, "sbh")
        assert context.run_strategy(3, query, "sbh") is one

    def test_kwargs_distinguish_results(self, context):
        query = context.workload[0]
        a = context.run_strategy(3, query, "sbh", probability_alive=0.1)
        b = context.run_strategy(3, query, "sbh", probability_alive=0.9)
        assert a is not b


class TestRunners:
    def test_fig9_small(self, context):
        nodes, times = fig9(context, max_level=3)
        assert len(nodes.rows) == 3
        assert nodes.column("nodes")[0] > 0
        assert len(times.rows) == 3

    def test_fig10_rows(self, context):
        table = fig10(context, level=3)
        assert len(table.rows) == 10
        assert all(retained > 0 for retained in table.column("retained"))

    def test_fig11_reuse_never_worse(self, context):
        table = fig11(context, level=3)
        for row in table.rows:
            _, bu, td, buwr, tdwr, sbh = row
            assert buwr <= bu
            assert tdwr <= td

    def test_fig13_percentages(self, context):
        table = fig13(context, levels=(3,))
        for row in table.rows:
            assert 0.0 <= row[1] <= 100.0

    def test_ablation_pa_shape(self, context):
        table = ablation_pa(context, level=3, values=(0.3, 0.7))
        assert len(table.headers) == 3

    def test_ablation_free_copies(self, context):
        table = ablation_free_copies(context, level=3)
        for _, with_free, without_free in table.rows:
            assert without_free <= with_free

    def test_fig12_times_follow_counts(self, context):
        from repro.bench.experiments import fig12

        counts = fig11(context, level=3)
        times = fig12(context, level=3)
        for header in ("BU", "TDWR"):
            for count, seconds in zip(counts.column(header), times.column(header)):
                assert (count == 0) == (seconds == 0)

    def test_fig14_small(self, context):
        from repro.bench.experiments import fig14

        table = fig14(context, level=3)
        assert len(table.rows) == 10
        for row in table.rows:
            assert row[4] >= 0  # ours #sql

    def test_table4_level3_all_zero_for_q3(self, context):
        from repro.bench.experiments import table4

        table = table4(context, qid="Q3", levels=(3,))
        assert table.rows[0][1:] == [0, 0, 0, 0, 0]

    def test_table3_small(self, context):
        from repro.bench.experiments import table3

        table = table3(context, levels=(3,))
        by_qid = {row[0]: row for row in table.rows}
        assert by_qid["Q3"][1] == 0  # three keywords, no L3 MTNs

    def test_run_experiment_by_name(self, context):
        table = run_experiment("fig11", context, level=3)
        assert "Figure 11" in table.title

    def test_run_experiment_scaling(self):
        table = run_experiment("scaling", scales=(1,), level=3)
        assert len(table.rows) == 1

    def test_unknown_experiment(self, context):
        with pytest.raises(ValueError):
            run_experiment("fig99", context)


class TestShardBench:
    def test_small_shard_bench_correctness(self, context):
        # Tiny burn + two strategies: correctness gates only (signatures
        # identical across tiers, zero shard failures); the speedup gate
        # is CI-only because it needs a multi-core runner.
        from repro.bench.shard import run_shard_bench

        table, payload = run_shard_bench(
            context,
            level=3,
            processes=2,
            burn_iterations=200,
            strategies=("bu", "tdwr"),
        )
        assert payload["passed"]
        assert payload["signatures_match"]
        assert payload["shard_failures"] == 0
        assert set(payload["strategies"]) == {"bu", "tdwr"}
        for row in payload["strategies"].values():
            assert row["signatures_match"] and row["shard_failures"] == 0
        assert "Sharded exploration" in table.render()

    def test_cpuburn_backend_registered_and_delegates(self, context):
        from repro.backends import create_backend
        from repro.bench.shard import ensure_cpuburn_registered

        ensure_cpuburn_registered()
        ensure_cpuburn_registered()  # idempotent
        debugger = context.debugger(3)
        backend = create_backend(
            "cpuburn",
            context.database,
            tuple_set_provider=debugger.index.provider,
            burn_iterations=10,
        )
        mapping = debugger.map_keywords(context.workload[0].text)
        graph = debugger.build_graph(debugger.prune(mapping))
        for index in graph.mtn_indexes:
            probe = graph.node(index).query
            assert backend.is_alive(probe) == debugger.backend.is_alive(probe)
