"""Unit tests for keyword predicates and the shared tokenizer."""

import pytest

from repro.relational.predicates import (
    KeywordPredicate,
    MatchMode,
    cell_matches,
    tokenize,
)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Saffron Scented-Candle") == ["saffron", "scented", "candle"]

    def test_numbers_kept(self):
        assert tokenize("burn time 50 hrs") == ["burn", "time", "50", "hrs"]

    def test_punctuation_dropped(self):
        assert tokenize("3.4 oz.") == ["3", "4", "oz"]

    def test_empty(self):
        assert tokenize("") == []


class TestCellMatches:
    def test_token_exact(self):
        assert cell_matches("candle", "red candle", MatchMode.TOKEN)
        assert not cell_matches("can", "red candle", MatchMode.TOKEN)

    def test_token_case_insensitive(self):
        assert cell_matches("CANDLE", "Red Candle", MatchMode.TOKEN)

    def test_substring(self):
        assert cell_matches("can", "red candle", MatchMode.SUBSTRING)
        assert cell_matches("scent", "unscented", MatchMode.SUBSTRING)
        assert not cell_matches("blue", "red candle", MatchMode.SUBSTRING)


class TestKeywordPredicate:
    def test_empty_keyword_rejected(self):
        with pytest.raises(ValueError):
            KeywordPredicate("  ")

    def test_matches_row(self):
        predicate = KeywordPredicate("saffron")
        assert predicate.matches_row([("name", "saffron oil")])
        assert not predicate.matches_row([("name", "vanilla oil")])
        assert not predicate.matches_row([])

    def test_sql_condition_substring(self):
        predicate = KeywordPredicate("saffron", MatchMode.SUBSTRING)
        sql = predicate.sql_condition("item_1", ("name", "description"))
        assert "SUBSTRING_MATCH('saffron', item_1.name)" in sql
        assert "OR" in sql

    def test_sql_condition_casefolds_keyword(self):
        predicate = KeywordPredicate("STRASSE", MatchMode.TOKEN)
        sql = predicate.sql_condition("item_1", ("name",))
        assert "TOKEN_MATCH('strasse', item_1.name)" in sql
        folded = KeywordPredicate("straße", MatchMode.TOKEN)
        assert folded.sql_condition("item_1", ("name",)) == sql

    def test_sql_condition_token(self):
        predicate = KeywordPredicate("saffron", MatchMode.TOKEN)
        sql = predicate.sql_condition("item_1", ("name",))
        assert "TOKEN_MATCH('saffron', item_1.name)" in sql

    def test_sql_condition_escapes_quotes(self):
        predicate = KeywordPredicate("o'neil", MatchMode.SUBSTRING)
        assert "o''neil" in predicate.sql_condition("t", ("name",))

    def test_sql_condition_no_columns(self):
        assert KeywordPredicate("x").sql_condition("t", ()) == "0 = 1"
