"""Shared fixtures: the Figure-2 toy database and small DBLife snapshots."""

from __future__ import annotations

import pytest

from repro.core.debugger import NonAnswerDebugger
from repro.datasets.dblife import DBLifeConfig, dblife_database
from repro.datasets.products import product_database, product_schema
from repro.index.inverted import InvertedIndex


@pytest.fixture(scope="session")
def products_db():
    return product_database()


@pytest.fixture(scope="session")
def products_schema():
    return product_schema()


@pytest.fixture(scope="session")
def products_index(products_db):
    return InvertedIndex(products_db)


@pytest.fixture(scope="session")
def products_debugger(products_db):
    """Shared read-only debugger over the toy database (max 2 joins)."""
    return NonAnswerDebugger(products_db, max_joins=2)


@pytest.fixture(scope="session")
def dblife_db():
    """A small deterministic DBLife snapshot for integration tests."""
    return dblife_database(DBLifeConfig(seed=42, scale=1))


@pytest.fixture(scope="session")
def dblife_debugger(dblife_db):
    """Level-3 debugger over the DBLife snapshot (direct mode for speed)."""
    return NonAnswerDebugger(dblife_db, max_joins=2, use_lattice=False)
