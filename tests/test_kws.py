"""Tests for the classic KWS-S substrate and MTN ≡ CN correspondence."""

import pytest

from repro.core.mtn import find_mtns
from repro.index.mapper import Interpretation
from repro.kws.candidate_networks import enumerate_candidate_networks
from repro.kws.discover import ClassicKWSSystem
from repro.kws.tuplesets import compute_tuple_sets, free_tuple_set


def interp(*pairs):
    return Interpretation(tuple(pairs))


class TestTupleSets:
    def test_keyword_tuple_sets(self, products_index):
        sets = compute_tuple_sets(products_index, ("saffron", "candle"))
        relations = {ts.relation for ts in sets["saffron"]}
        assert relations == {"Attribute", "Color", "Item"}
        assert all(ts.size > 0 for ts in sets["saffron"])

    def test_missing_keyword_empty(self, products_index):
        sets = compute_tuple_sets(products_index, ("sofa",))
        assert sets["sofa"] == []

    def test_free_tuple_set(self, products_index):
        ts = free_tuple_set(products_index, "Item")
        assert ts.is_free
        assert ts.size == 4
        assert ts.describe() == "Item^{}"


class TestCandidateNetworks:
    def test_cns_equal_mtns(self, products_debugger):
        """The lattice's MTNs are exactly DISCOVER's candidate networks."""
        binder = products_debugger.binder
        schema = products_debugger.schema
        for interpretation in (
            interp(("red", "Color"), ("candle", "ProductType")),
            interp(("saffron", "Color"), ("scented", "Item"),
                   ("candle", "ProductType")),
            interp(("saffron", "Item"), ("scented", "Item")),
            interp(("candle", "Item"),),
        ):
            pruned = binder.prune(interpretation)
            mtns = set(find_mtns(pruned))
            cns = set(
                enumerate_candidate_networks(
                    schema, pruned.binding, binder.max_joins + 1
                )
            )
            assert mtns == cns, interpretation.describe()

    def test_empty_binding(self, products_debugger):
        binding = products_debugger.binder.bind(Interpretation(()))
        assert enumerate_candidate_networks(
            products_debugger.schema, binding, 3
        ) == []

    def test_max_size_respected(self, products_debugger):
        binding = products_debugger.binder.bind(
            interp(("red", "Color"), ("candle", "ProductType"))
        )
        for tree in enumerate_candidate_networks(
            products_debugger.schema, binding, 3
        ):
            assert tree.size <= 3


class TestClassicSystem:
    @pytest.fixture(scope="class")
    def system(self, products_db):
        return ClassicKWSSystem(products_db, max_joins=2)

    def test_answers_returned(self, system):
        answer = system.search("scented candle")
        assert not answer.is_non_answer
        assert answer.candidate_networks >= len(answer.answers)
        assert answer.queries_executed > 0

    def test_non_answer_is_silent(self, system):
        """The problem the paper fixes: dead CNs simply vanish."""
        answer = system.search("pink scented")  # no pink products exist
        assert answer.is_non_answer
        assert answer.answers == []
        assert answer.queries_executed > 0  # it did the work, said nothing

    def test_sample_tuples_attached(self, system):
        answer = system.search("scented candle")
        assert answer.sample_tuples
        some = next(iter(answer.sample_tuples.values()))
        assert some

    def test_missing_keyword(self, system):
        answer = system.search("sofa")
        assert answer.is_non_answer
        assert answer.queries_executed == 0
