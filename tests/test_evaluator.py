"""Unit tests for the instrumented evaluator (counts, cache, cost model)."""

import pytest

from repro.obs import ProbeBudget, ProbeBudgetExhausted, ProbeTracer
from repro.relational.evaluator import EvaluationStats, InstrumentedEvaluator
from repro.relational.jointree import BoundQuery, JoinTree, RelationInstance


class FakeBackend:
    """Counts calls; aliveness is determined by the bound keyword."""

    def __init__(self):
        self.calls = 0

    def is_alive(self, query):
        self.calls += 1
        return "alive" in query.keywords


class FakeCostModel:
    def cost(self, query):
        return 2.5


def query(keyword: str) -> BoundQuery:
    tree = JoinTree.single(RelationInstance("R", 1))
    return BoundQuery.from_mapping(tree, {RelationInstance("R", 1): keyword})


class TestInstrumentedEvaluator:
    def test_counts_executions(self):
        backend = FakeBackend()
        evaluator = InstrumentedEvaluator(backend)
        assert evaluator.is_alive(query("alive")) is True
        assert evaluator.is_alive(query("dead-kw")) is False
        assert evaluator.stats.queries_executed == 2
        assert backend.calls == 2

    def test_cache_hits_do_not_execute(self):
        backend = FakeBackend()
        evaluator = InstrumentedEvaluator(backend, use_cache=True)
        first = evaluator.is_alive(query("alive"))
        second = evaluator.is_alive(query("alive"))
        assert first == second
        assert backend.calls == 1
        assert evaluator.stats.queries_executed == 1
        assert evaluator.stats.cache_hits == 1

    def test_no_cache_reexecutes(self):
        backend = FakeBackend()
        evaluator = InstrumentedEvaluator(backend, use_cache=False)
        evaluator.is_alive(query("alive"))
        evaluator.is_alive(query("alive"))
        assert backend.calls == 2
        assert evaluator.stats.cache_hits == 0

    def test_reset_cache(self):
        backend = FakeBackend()
        evaluator = InstrumentedEvaluator(backend)
        evaluator.is_alive(query("alive"))
        evaluator.reset_cache()
        evaluator.is_alive(query("alive"))
        assert backend.calls == 2
        assert evaluator.cache_size == 1

    def test_cost_model_accumulates(self):
        evaluator = InstrumentedEvaluator(FakeBackend(), cost_model=FakeCostModel())
        evaluator.is_alive(query("alive"))
        evaluator.is_alive(query("other"))
        assert evaluator.stats.simulated_time == 5.0

    def test_per_level_counts(self):
        evaluator = InstrumentedEvaluator(FakeBackend())
        evaluator.is_alive(query("a"))
        evaluator.is_alive(query("b"))
        assert evaluator.stats.executed_by_level == {1: 2}

    def test_stats_snapshot_and_diff(self):
        evaluator = InstrumentedEvaluator(FakeBackend())
        evaluator.is_alive(query("a"))
        before = evaluator.stats.snapshot()
        evaluator.is_alive(query("b"))
        evaluator.is_alive(query("c"))
        delta = evaluator.stats.diff(before)
        assert delta.queries_executed == 2
        assert delta.executed_by_level == {1: 2}

    def test_diff_keeps_levels_present_only_in_earlier(self):
        """Regression: levels dropped since the snapshot must yield negative
        deltas, not silently vanish (e.g. diffing across ``reset_stats``)."""
        earlier = EvaluationStats(queries_executed=3, executed_by_level={1: 1, 2: 2})
        later = EvaluationStats(queries_executed=4, executed_by_level={2: 3, 3: 1})
        delta = later.diff(earlier)
        assert delta.queries_executed == 1
        assert delta.executed_by_level == {1: -1, 2: 1, 3: 1}

    def test_diff_after_reset_stats_reports_negative_levels(self):
        evaluator = InstrumentedEvaluator(FakeBackend())
        evaluator.is_alive(query("a"))
        before = evaluator.stats.snapshot()
        evaluator.reset_stats()
        delta = evaluator.stats.diff(before)
        assert delta.queries_executed == -1
        assert delta.executed_by_level == {1: -1}

    def test_reset_stats(self):
        evaluator = InstrumentedEvaluator(FakeBackend())
        evaluator.is_alive(query("a"))
        evaluator.reset_stats()
        assert evaluator.stats.queries_executed == 0

    def test_stats_str(self):
        stats = EvaluationStats(queries_executed=3, cache_hits=1)
        assert "3 queries" in str(stats)


class TestBudgetedEvaluator:
    def test_budget_refuses_before_touching_backend(self):
        backend = FakeBackend()
        budget = ProbeBudget(max_queries=2)
        evaluator = InstrumentedEvaluator(backend, use_cache=False, budget=budget)
        evaluator.is_alive(query("a"))
        evaluator.is_alive(query("b"))
        with pytest.raises(ProbeBudgetExhausted):
            evaluator.is_alive(query("c"))
        assert backend.calls == 2
        assert evaluator.stats.queries_executed == 2
        assert budget.bound

    def test_cache_hits_are_free_after_exhaustion(self):
        backend = FakeBackend()
        budget = ProbeBudget(max_queries=1)
        evaluator = InstrumentedEvaluator(backend, use_cache=True, budget=budget)
        assert evaluator.is_alive(query("alive")) is True
        # Budget spent, but the cached answer still flows.
        assert evaluator.is_alive(query("alive")) is True
        assert backend.calls == 1
        assert evaluator.stats.cache_hits == 1

    def test_simulated_deadline_binds(self):
        budget = ProbeBudget(max_simulated_seconds=4.0)
        evaluator = InstrumentedEvaluator(
            FakeBackend(), cost_model=FakeCostModel(), use_cache=False, budget=budget
        )
        evaluator.is_alive(query("a"))  # 2.5 simulated seconds
        evaluator.is_alive(query("b"))  # 5.0 total >= 4.0: next probe refused
        with pytest.raises(ProbeBudgetExhausted):
            evaluator.is_alive(query("c"))

    def test_tracer_records_one_span_per_probe(self):
        tracer = ProbeTracer()
        evaluator = InstrumentedEvaluator(FakeBackend(), tracer=tracer)
        evaluator.is_alive(query("alive"))
        evaluator.is_alive(query("alive"))  # cache hit
        evaluator.is_alive(query("other"))
        assert tracer.span_count == 3
        assert tracer.executed_span_count == evaluator.stats.queries_executed == 2
        hit = [span for span in tracer.spans if span.cache_hit]
        assert len(hit) == 1 and hit[0].alive is True
        assert all(span.backend == "FakeBackend" for span in tracer.spans)

    def test_tracer_records_budget_remaining_and_exhaustion_event(self):
        tracer = ProbeTracer()
        budget = ProbeBudget(max_queries=1)
        evaluator = InstrumentedEvaluator(
            FakeBackend(), use_cache=False, budget=budget, tracer=tracer
        )
        evaluator.is_alive(query("a"))
        assert tracer.spans[0].budget_remaining == 0
        with pytest.raises(ProbeBudgetExhausted):
            evaluator.is_alive(query("b"))
        assert [event.name for event in tracer.events] == ["budget_exhausted"]
