"""Unit tests for the instrumented evaluator (counts, cache, cost model)."""

from repro.relational.evaluator import EvaluationStats, InstrumentedEvaluator
from repro.relational.jointree import BoundQuery, JoinTree, RelationInstance


class FakeBackend:
    """Counts calls; aliveness is determined by the bound keyword."""

    def __init__(self):
        self.calls = 0

    def is_alive(self, query):
        self.calls += 1
        return "alive" in query.keywords


class FakeCostModel:
    def cost(self, query):
        return 2.5


def query(keyword: str) -> BoundQuery:
    tree = JoinTree.single(RelationInstance("R", 1))
    return BoundQuery.from_mapping(tree, {RelationInstance("R", 1): keyword})


class TestInstrumentedEvaluator:
    def test_counts_executions(self):
        backend = FakeBackend()
        evaluator = InstrumentedEvaluator(backend)
        assert evaluator.is_alive(query("alive")) is True
        assert evaluator.is_alive(query("dead-kw")) is False
        assert evaluator.stats.queries_executed == 2
        assert backend.calls == 2

    def test_cache_hits_do_not_execute(self):
        backend = FakeBackend()
        evaluator = InstrumentedEvaluator(backend, use_cache=True)
        first = evaluator.is_alive(query("alive"))
        second = evaluator.is_alive(query("alive"))
        assert first == second
        assert backend.calls == 1
        assert evaluator.stats.queries_executed == 1
        assert evaluator.stats.cache_hits == 1

    def test_no_cache_reexecutes(self):
        backend = FakeBackend()
        evaluator = InstrumentedEvaluator(backend, use_cache=False)
        evaluator.is_alive(query("alive"))
        evaluator.is_alive(query("alive"))
        assert backend.calls == 2
        assert evaluator.stats.cache_hits == 0

    def test_reset_cache(self):
        backend = FakeBackend()
        evaluator = InstrumentedEvaluator(backend)
        evaluator.is_alive(query("alive"))
        evaluator.reset_cache()
        evaluator.is_alive(query("alive"))
        assert backend.calls == 2
        assert evaluator.cache_size == 1

    def test_cost_model_accumulates(self):
        evaluator = InstrumentedEvaluator(FakeBackend(), cost_model=FakeCostModel())
        evaluator.is_alive(query("alive"))
        evaluator.is_alive(query("other"))
        assert evaluator.stats.simulated_time == 5.0

    def test_per_level_counts(self):
        evaluator = InstrumentedEvaluator(FakeBackend())
        evaluator.is_alive(query("a"))
        evaluator.is_alive(query("b"))
        assert evaluator.stats.executed_by_level == {1: 2}

    def test_stats_snapshot_and_diff(self):
        evaluator = InstrumentedEvaluator(FakeBackend())
        evaluator.is_alive(query("a"))
        before = evaluator.stats.snapshot()
        evaluator.is_alive(query("b"))
        evaluator.is_alive(query("c"))
        delta = evaluator.stats.diff(before)
        assert delta.queries_executed == 2
        assert delta.executed_by_level == {1: 2}

    def test_reset_stats(self):
        evaluator = InstrumentedEvaluator(FakeBackend())
        evaluator.is_alive(query("a"))
        evaluator.reset_stats()
        assert evaluator.stats.queries_executed == 0

    def test_stats_str(self):
        stats = EvaluationStats(queries_executed=3, cache_hits=1)
        assert "3 queries" in str(stats)
