"""Tests for user-defined constraint pushdown (§5 future work)."""

import pytest

from repro.core.constraints import ConstraintError, SearchConstraints
from repro.core.status import Status


QUERY = "saffron scented candle"


class TestMtnConstraints:
    def test_exclude_relations_drops_interpretations(self, products_debugger):
        constraints = SearchConstraints(exclude_relations=frozenset({"Color"}))
        report = products_debugger.debug(QUERY, constraints=constraints)
        baseline = products_debugger.debug(QUERY)
        assert report.mtn_count < baseline.mtn_count
        for node in report.graph.nodes:
            assert "Color" not in node.tree.relations()

    def test_mtn_predicate(self, products_debugger):
        constraints = SearchConstraints(
            mtn_predicate=lambda tree: "Attribute" in tree.relations()
        )
        report = products_debugger.debug(QUERY, constraints=constraints)
        assert report.mtn_count > 0
        for mtn in report.graph.mtns():
            assert "Attribute" in mtn.tree.relations()

    def test_constrained_results_subset_of_unconstrained(self, products_debugger):
        constraints = SearchConstraints(exclude_relations=frozenset({"Color"}))
        constrained = products_debugger.debug(QUERY, constraints=constraints)
        baseline = products_debugger.debug(QUERY)
        constrained_explanations = {
            q.describe(): sorted(m.describe() for m in mpans)
            for q, mpans in constrained.explanations()
        }
        baseline_explanations = {
            q.describe(): sorted(m.describe() for m in mpans)
            for q, mpans in baseline.explanations()
        }
        for described, mpans in constrained_explanations.items():
            assert baseline_explanations[described] == mpans

    def test_constraints_reduce_sql(self, products_debugger):
        constraints = SearchConstraints(exclude_relations=frozenset({"Color"}))
        constrained = products_debugger.debug(QUERY, constraints=constraints)
        baseline = products_debugger.debug(QUERY)
        assert (
            constrained.traversal.stats.queries_executed
            <= baseline.traversal.stats.queries_executed
        )


class TestExplanationLevelCap:
    def test_mtns_kept_explanations_capped(self, products_debugger):
        constraints = SearchConstraints(max_explanation_level=1)
        report = products_debugger.debug(QUERY, constraints=constraints)
        baseline = products_debugger.debug(QUERY)
        # Same candidate networks, classified identically...
        assert report.mtn_count == baseline.mtn_count
        assert len(report.non_answers()) == len(baseline.non_answers())
        # ...but every explanation is now a single-table sub-query.
        for _, mpans in report.explanations():
            for mpan in mpans:
                assert mpan.tree.size == 1

    def test_capped_masks_stay_sound(self, products_debugger):
        """With the level cap, alive/dead inference must stay consistent."""
        constraints = SearchConstraints(max_explanation_level=1)
        report = products_debugger.debug(QUERY, constraints=constraints)
        graph = report.graph
        # MTN descendant masks bridge directly to level-1 nodes.
        for mtn_index in graph.mtn_indexes:
            if graph.node(mtn_index).level > 1:
                members = graph.bits(graph.desc_mask[mtn_index])
                assert members
                for member in members:
                    assert graph.node(member).level <= 1
                    assert (graph.asc_mask[member] >> mtn_index) & 1


class TestCustomPredicates:
    def test_subtree_closed_predicate_accepted(self, products_debugger):
        constraints = SearchConstraints(
            tree_predicate=lambda tree: "Item" not in tree.relations()
            or tree.size <= 3
        )
        # "Item-free or small" is subtree-closed on this schema's trees.
        report = products_debugger.debug(QUERY, constraints=constraints)
        assert report.traversal is not None

    def test_non_closed_predicate_rejected(self, products_debugger):
        constraints = SearchConstraints(
            tree_predicate=lambda tree: tree.size != 1  # drops all singles
        )
        with pytest.raises(ConstraintError, match="not subtree-closed"):
            products_debugger.debug(QUERY, constraints=constraints)

    def test_everything_excluded_gives_empty_report(self, products_debugger):
        constraints = SearchConstraints(mtn_predicate=lambda tree: False)
        report = products_debugger.debug(QUERY, constraints=constraints)
        assert report.mtn_count == 0
        assert report.answers() == [] and report.non_answers() == []


class TestSessionWithConstraints:
    def test_session_respects_constraints(self, products_debugger):
        from repro.core.session import DebugSession

        constraints = SearchConstraints(exclude_relations=frozenset({"Color"}))
        with DebugSession(products_debugger, QUERY, constraints) as session:
            for view in session.overview():
                assert "Color" not in view.query.tree.relations()
            # Classifying everything still works under constraints.
            for view in session.overview():
                assert session.classify(view.position) in (
                    Status.ALIVE,
                    Status.DEAD,
                )
