"""Tests for parallel probe execution: worker pool, budget cap, LRU, traces."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.bench.parallel import run_parallel_bench
from repro.core.traversal import STRATEGY_NAMES
from repro.obs import (
    ProbeBudget,
    ProbeBudgetExhausted,
    ProbeTracer,
    validate_trace_record,
)
from repro.parallel import ParallelProbeExecutor, SimulatedLatencyBackend
from repro.relational.evaluator import (
    EvaluationStats,
    InstrumentedEvaluator,
    ProbeBatch,
)
from repro.relational.jointree import BoundQuery, JoinTree, RelationInstance
from repro.relational.sqlite_backend import SqliteEngine


class FakeBackend:
    """Counts calls; aliveness is determined by the bound keyword."""

    def __init__(self, delay: float = 0.0):
        self.calls = 0
        self.delay = delay
        self._lock = threading.Lock()

    def is_alive(self, query):
        with self._lock:
            self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        return any("alive" in keyword for keyword in query.keywords)


class ExplodingBackend(FakeBackend):
    """Raises on keywords containing 'boom'."""

    def is_alive(self, query):
        if any("boom" in keyword for keyword in query.keywords):
            with self._lock:
                self.calls += 1
            raise RuntimeError("backend down")
        return super().is_alive(query)


def query(keyword: str) -> BoundQuery:
    tree = JoinTree.single(RelationInstance("R", 1))
    return BoundQuery.from_mapping(tree, {RelationInstance("R", 1): keyword})


def queries(count: int, prefix: str = "kw") -> list[BoundQuery]:
    return [query(f"{prefix}-{index}") for index in range(count)]


# ----------------------------------------------------------------- sqlite
class TestSqliteThreadSafety:
    def test_concurrent_is_alive_matches_serial(self, products_debugger):
        """Regression: concurrent probes must not raise ProgrammingError."""
        mapping = products_debugger.map_keywords("saffron scented candle")
        graph = products_debugger.build_graph(products_debugger.prune(mapping))
        probes = [graph.node(index).query for index in range(len(graph))]
        with SqliteEngine(products_debugger.database) as engine:
            serial = [engine.is_alive(probe) for probe in probes]
            with ThreadPoolExecutor(max_workers=8) as pool:
                concurrent = list(pool.map(engine.is_alive, probes * 4))
            assert concurrent == serial * 4

    def test_concurrent_checkouts_draw_distinct_pooled_connections(
        self, products_db
    ):
        """3 threads holding checkouts at once get 3 distinct connections."""
        with SqliteEngine(products_db, pool_size=4) as engine:
            # Only the anchor connection exists before any checkout.
            assert engine.connection_count == 1
            barrier = threading.Barrier(3)

            def checkout():
                with engine._pool.connection() as connection:
                    barrier.wait(timeout=5)  # all 3 held simultaneously
                    return id(connection)

            with ThreadPoolExecutor(max_workers=3) as pool:
                held = list(pool.map(lambda _: checkout(), range(3)))
            assert len(set(held)) == 3
            stats = engine.pool_stats()
            assert stats.created == 3
            assert stats.max_in_use == 3
            assert stats.in_use == 0  # all returned afterwards
            assert engine.connection_count == 4  # anchor + 3 idle

    def test_closed_engine_refuses_new_connections(self, products_db):
        import sqlite3

        engine = SqliteEngine(products_db)
        engine.close()
        with pytest.raises(sqlite3.ProgrammingError):
            _ = engine.connection


# ----------------------------------------------------------------- budget
class TestBudgetUnderContention:
    def test_max_queries_is_a_hard_cap(self):
        """8 workers racing for a 5-probe budget execute exactly 5 probes."""
        backend = FakeBackend(delay=0.005)
        budget = ProbeBudget(max_queries=5)
        evaluator = InstrumentedEvaluator(backend, use_cache=False, budget=budget)
        with ParallelProbeExecutor(workers=8) as executor:
            batch = evaluator.probe_many(queries(20), executor=executor)
        assert batch.exhausted
        assert len(batch.results) == 5
        assert backend.calls == 5
        assert evaluator.stats.queries_executed == 5
        assert budget.queries_used == 5
        assert budget.in_flight == 0

    def test_backend_error_releases_reservation(self):
        backend = ExplodingBackend()
        budget = ProbeBudget(max_queries=2)
        evaluator = InstrumentedEvaluator(backend, use_cache=False, budget=budget)
        with ParallelProbeExecutor(workers=2) as executor:
            with pytest.raises(RuntimeError, match="backend down"):
                evaluator.probe_many([query("boom")], executor=executor)
            assert budget.in_flight == 0
            assert budget.queries_used == 0
            # The freed slot is still usable afterwards.
            batch = evaluator.probe_many(queries(3), executor=executor)
        assert len(batch.results) == 2 and batch.exhausted

    def test_serial_probe_many_truncates_on_exhaustion(self):
        backend = FakeBackend()
        budget = ProbeBudget(max_queries=3)
        evaluator = InstrumentedEvaluator(backend, use_cache=False, budget=budget)
        batch = evaluator.probe_many(queries(6))
        assert batch.exhausted
        assert len(batch.results) == 3
        assert backend.calls == 3

    def test_admission_order_is_submission_order(self):
        """The executed prefix under a budget is the batch's own prefix."""
        backend = FakeBackend(delay=0.002)
        budget = ProbeBudget(max_queries=4)
        evaluator = InstrumentedEvaluator(backend, budget=budget)
        probes = [query(f"alive-{index}") for index in range(8)]
        with ParallelProbeExecutor(workers=4) as executor:
            batch = evaluator.probe_many(probes, executor=executor)
        serial_evaluator = InstrumentedEvaluator(
            FakeBackend(), budget=ProbeBudget(max_queries=4)
        )
        serial = serial_evaluator.probe_many(probes)
        assert batch.results == serial.results
        assert batch.exhausted and serial.exhausted


# -------------------------------------------------------------- LRU cache
class TestBoundedCache:
    def test_capacity_evicts_least_recently_used(self):
        backend = FakeBackend()
        evaluator = InstrumentedEvaluator(backend, cache_capacity=2)
        first, second, third = queries(3)
        evaluator.is_alive(first)
        evaluator.is_alive(second)
        evaluator.is_alive(third)  # evicts `first`
        assert evaluator.cache_size == 2
        assert evaluator.stats.cache_evictions == 1
        evaluator.is_alive(first)  # re-executes: it was evicted
        assert backend.calls == 4
        evaluator.is_alive(third)  # still cached
        assert backend.calls == 4
        assert evaluator.stats.cache_hits == 1

    def test_hit_refreshes_recency(self):
        backend = FakeBackend()
        evaluator = InstrumentedEvaluator(backend, cache_capacity=2)
        first, second, third = queries(3)
        evaluator.is_alive(first)
        evaluator.is_alive(second)
        evaluator.is_alive(first)  # hit: `first` becomes most recent
        evaluator.is_alive(third)  # evicts `second`, not `first`
        evaluator.is_alive(first)
        assert backend.calls == 3
        assert evaluator.stats.cache_hits == 2

    def test_miss_and_eviction_counters_in_str(self):
        evaluator = InstrumentedEvaluator(FakeBackend(), cache_capacity=1)
        evaluator.is_alive(query("a"))
        evaluator.is_alive(query("b"))
        text = str(evaluator.stats)
        assert "2 queries" in text
        assert "0 cache hits / 2 misses" in text
        assert "1 evicted" in text

    def test_counters_survive_snapshot_and_diff(self):
        evaluator = InstrumentedEvaluator(FakeBackend(), cache_capacity=1)
        evaluator.is_alive(query("a"))
        before = evaluator.stats.snapshot()
        evaluator.is_alive(query("b"))
        evaluator.is_alive(query("b"))
        delta = evaluator.stats.diff(before)
        assert delta.cache_misses == 1
        assert delta.cache_evictions == 1
        assert delta.cache_hits == 1

    def test_uncached_evaluator_counts_no_misses(self):
        evaluator = InstrumentedEvaluator(FakeBackend(), use_cache=False)
        evaluator.is_alive(query("a"))
        assert evaluator.stats.cache_misses == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            InstrumentedEvaluator(FakeBackend(), cache_capacity=0)

    def test_unbounded_cache_never_evicts(self):
        evaluator = InstrumentedEvaluator(FakeBackend(), cache_capacity=None)
        for probe in queries(50):
            evaluator.is_alive(probe)
        assert evaluator.cache_size == 50
        assert evaluator.stats.cache_evictions == 0


# ---------------------------------------------------------------- executor
class TestParallelExecutor:
    def test_duplicates_collapse_to_cache_hits(self):
        backend = FakeBackend(delay=0.002)
        evaluator = InstrumentedEvaluator(backend, use_cache=True)
        probe = query("alive-dup")
        with ParallelProbeExecutor(workers=4) as executor:
            batch = evaluator.probe_many([probe, probe, probe], executor=executor)
        assert batch.results == [True, True, True]
        assert backend.calls == 1
        assert evaluator.stats.queries_executed == 1
        assert evaluator.stats.cache_hits == 2

    def test_uncached_duplicates_all_execute(self):
        backend = FakeBackend()
        evaluator = InstrumentedEvaluator(backend, use_cache=False)
        probe = query("alive-dup")
        with ParallelProbeExecutor(workers=2) as executor:
            batch = evaluator.probe_many([probe, probe], executor=executor)
        assert batch.results == [True, True]
        assert backend.calls == 2

    def test_results_in_submission_order(self):
        backend = FakeBackend(delay=0.001)
        evaluator = InstrumentedEvaluator(backend, use_cache=False)
        probes = [query("alive-a"), query("dead-b"), query("alive-c")]
        with ParallelProbeExecutor(workers=3) as executor:
            batch = evaluator.probe_many(probes, executor=executor)
        assert batch.results == [True, False, True]

    def test_empty_batch(self):
        evaluator = InstrumentedEvaluator(FakeBackend())
        with ParallelProbeExecutor(workers=2) as executor:
            batch = evaluator.probe_many([], executor=executor)
        assert batch == ProbeBatch()

    def test_closed_executor_refuses_batches(self):
        executor = ParallelProbeExecutor(workers=2)
        executor.close()
        with pytest.raises(RuntimeError):
            executor.run_batch(InstrumentedEvaluator(FakeBackend()), [query("a")])

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelProbeExecutor(workers=0)

    def test_overlapping_sleeps_actually_overlap(self):
        """4 workers on 8 x 10ms probes must beat the 80ms serial floor."""
        backend = FakeBackend(delay=0.010)
        evaluator = InstrumentedEvaluator(backend, use_cache=False)
        with ParallelProbeExecutor(workers=4) as executor:
            started = time.perf_counter()
            evaluator.probe_many(queries(8), executor=executor)
            elapsed = time.perf_counter() - started
        assert elapsed < 0.070


# -------------------------------------------------------- latency backend
class TestSimulatedLatencyBackend:
    def test_delegates_answers(self):
        backend = SimulatedLatencyBackend(FakeBackend(), latency=0.0)
        assert backend.is_alive(query("alive")) is True
        assert backend.is_alive(query("dead")) is False

    def test_delay_includes_cost_model(self):
        class Cost:
            def cost(self, query):
                return 2.0

        backend = SimulatedLatencyBackend(
            FakeBackend(), latency=0.001, cost_model=Cost(), cost_scale=0.01
        )
        assert backend.delay_for(query("a")) == pytest.approx(0.021)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedLatencyBackend(FakeBackend(), latency=-1.0)
        with pytest.raises(ValueError):
            SimulatedLatencyBackend(FakeBackend(), cost_scale=1.0)


# ------------------------------------------------------------------ traces
class TestWorkerTraceFields:
    def test_spans_carry_worker_id_and_queue_wait(self):
        tracer = ProbeTracer()
        evaluator = InstrumentedEvaluator(
            FakeBackend(delay=0.001), tracer=tracer, use_cache=False
        )
        with ParallelProbeExecutor(workers=2) as executor:
            evaluator.probe_many(queries(4), executor=executor)
        executed = [span for span in tracer.spans if not span.cache_hit]
        assert len(executed) == 4
        assert all(span.worker_id is not None for span in executed)
        assert all(
            span.queue_wait_s is not None and span.queue_wait_s >= 0.0
            for span in executed
        )
        assert {span.worker_id for span in executed} <= {0, 1}

    def test_serial_spans_omit_worker_fields(self):
        tracer = ProbeTracer()
        evaluator = InstrumentedEvaluator(FakeBackend(), tracer=tracer)
        evaluator.is_alive(query("a"))
        record = tracer.spans[0].to_dict()
        assert "worker_id" not in record
        assert "queue_wait_s" not in record

    def test_parallel_records_validate(self):
        tracer = ProbeTracer()
        evaluator = InstrumentedEvaluator(
            FakeBackend(), tracer=tracer, use_cache=True
        )
        with ParallelProbeExecutor(workers=2) as executor:
            evaluator.probe_many(queries(3) + queries(3), executor=executor)
        for record in tracer.records:
            assert validate_trace_record(record.to_dict()) in ("span", "event")

    def test_validation_rejects_bad_worker_types(self):
        tracer = ProbeTracer()
        evaluator = InstrumentedEvaluator(FakeBackend(), tracer=tracer)
        evaluator.is_alive(query("a"))
        record = tracer.spans[0].to_dict()
        from repro.obs.trace import TraceValidationError

        for bad in ({"worker_id": "3"}, {"worker_id": True}, {"queue_wait_s": "x"}):
            with pytest.raises(TraceValidationError):
                validate_trace_record({**record, **bad})

    def test_aggregate_by_worker(self):
        tracer = ProbeTracer()
        evaluator = InstrumentedEvaluator(
            FakeBackend(delay=0.001), tracer=tracer, use_cache=False
        )
        with ParallelProbeExecutor(workers=2) as executor:
            evaluator.probe_many(queries(6), executor=executor)
        rows = tracer.aggregate("worker_id")
        assert sum(row["executed"] for row in rows) == 6


# ------------------------------------------------- traversal equivalence
class TestStrategyEquivalence:
    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_parallel_run_matches_serial(self, products_debugger, name):
        serial = products_debugger.debug("saffron scented candle", strategy=name)
        parallel = products_debugger.debug(
            "saffron scented candle", strategy=name, workers=3
        )
        assert (
            parallel.traversal.classification_signature()
            == serial.traversal.classification_signature()
        )
        assert (
            parallel.traversal.stats.queries_executed
            == serial.traversal.stats.queries_executed
        )

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_budgeted_parallel_never_exceeds_cap(self, products_debugger, name):
        report = products_debugger.debug(
            "saffron scented candle",
            strategy=name,
            budget=ProbeBudget(max_queries=3),
            workers=4,
        )
        assert report.traversal.stats.queries_executed <= 3
        serial = products_debugger.debug(
            "saffron scented candle",
            strategy=name,
            budget=ProbeBudget(max_queries=3),
        )
        assert (
            report.traversal.classification_signature()
            == serial.traversal.classification_signature()
        )

    def test_shared_executor_across_strategies(self, products_debugger):
        with ParallelProbeExecutor(workers=2) as executor:
            for name in ("buwr", "tdwr"):
                serial = products_debugger.debug(
                    "saffron scented candle", strategy=name
                )
                shared = products_debugger.debug(
                    "saffron scented candle", strategy=name, executor=executor
                )
                assert (
                    shared.traversal.classification_signature()
                    == serial.traversal.classification_signature()
                )


# ------------------------------------------------------------------- bench
class TestParallelBenchSmoke:
    def test_bench_verifies_equivalence_and_budget(self):
        from repro.bench.context import BenchContext

        table, payload = run_parallel_bench(
            BenchContext(),
            level=2,
            workers=2,
            latency=0.0002,
            strategies=("buwr", "sbh"),
            budget_queries=2,
        )
        assert payload["signatures_match"] is True
        assert payload["budget_respected"] is True
        assert set(payload["strategies"]) == {"buwr", "sbh"}
        for entry in payload["strategies"].values():
            assert entry["serial_queries"] == entry["parallel_queries"]
        rendered = table.render()
        assert "buwr" in rendered and "sbh" in rendered
