"""Tests for the interactive debugging session."""

import pytest

from repro.core.session import DebugSession, SessionError
from repro.core.status import Status

QUERY = "saffron scented candle"


@pytest.fixture
def session(products_debugger):
    with DebugSession(products_debugger, QUERY) as session:
        yield session


class TestLifecycle:
    def test_opening_costs_no_sql(self, session):
        assert session.evaluator.stats.queries_executed == 0

    def test_missing_keywords_rejected(self, products_debugger):
        with pytest.raises(SessionError, match="sofa"):
            DebugSession(products_debugger, "saffron sofa")

    def test_overview_lists_all_mtns(self, session):
        views = session.overview()
        assert len(views) == 5
        assert all(view.status is Status.POSSIBLY_ALIVE for view in views)

    def test_progress_string(self, session):
        assert "0/5" in session.progress()


class TestClassify:
    def test_classify_costs_at_most_one_query(self, session):
        before = session.evaluator.stats.queries_executed
        session.classify(0)
        assert session.evaluator.stats.queries_executed <= before + 1

    def test_classify_is_idempotent(self, session):
        first = session.classify(0)
        executed = session.evaluator.stats.queries_executed
        assert session.classify(0) is first
        assert session.evaluator.stats.queries_executed == executed

    def test_unknown_position(self, session):
        with pytest.raises(SessionError):
            session.classify(99)

    def test_matches_batch_debugger(self, session, products_debugger):
        batch = products_debugger.debug(QUERY)
        batch_status = {
            batch.graph.node(i).query.describe(): Status.ALIVE
            for i in batch.traversal.alive_mtns
        }
        batch_status.update(
            (batch.graph.node(i).query.describe(), Status.DEAD)
            for i in batch.traversal.dead_mtns
        )
        for view in session.overview():
            assert session.classify(view.position) is batch_status[
                view.query.describe()
            ]


class TestExplain:
    def test_alive_mtn_has_no_explanation(self, session):
        for view in session.overview():
            if session.classify(view.position) is Status.ALIVE:
                assert session.explain(view.position) == []
                return
        pytest.fail("expected at least one alive candidate")

    def test_explanations_match_batch(self, session, products_debugger):
        batch = products_debugger.debug(QUERY)
        batch_mpans = {
            q.describe(): sorted(m.describe() for m in mpans)
            for q, mpans in batch.explanations()
        }
        for view in session.overview():
            if session.classify(view.position) is Status.DEAD:
                mpans = sorted(m.describe() for m in session.explain(view.position))
                assert mpans == batch_mpans[view.query.describe()]

    def test_explanations_shared_learning(self, session):
        """Explaining a second overlapping candidate is cheaper."""
        dead = [
            view.position
            for view in session.overview()
            if session.classify(view.position) is Status.DEAD
        ]
        assert len(dead) >= 2
        session.explain(dead[0])
        first_cost = session.evaluator.stats.queries_executed
        session.explain(dead[1])
        second_cost = session.evaluator.stats.queries_executed - first_cost
        # The shared store/cache means the second explanation re-executes
        # none of the overlapping sub-queries.
        assert second_cost <= first_cost

    def test_explain_all_skips_dismissed(self, session):
        session.dismiss(0)
        explanations = session.explain_all()
        assert 0 not in explanations
        views = session.overview()
        assert views[0].dismissed

    def test_explain_all_covers_dead(self, session):
        explanations = session.explain_all()
        dead = [
            view.position
            for view in session.overview()
            if view.status is Status.DEAD
        ]
        assert sorted(explanations) == dead
        for mpans in explanations.values():
            assert mpans
