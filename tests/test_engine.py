"""Unit tests for the in-memory join engine (aliveness + enumeration)."""

import pytest

from repro.index.inverted import InvertedIndex
from repro.relational.engine import InMemoryEngine
from repro.relational.jointree import BoundQuery, JoinEdge, JoinTree, RelationInstance
from repro.relational.predicates import MatchMode


def inst(relation, copy):
    return RelationInstance(relation, copy)


def make_query(schema, spec, bindings, mode=MatchMode.TOKEN):
    """Build a BoundQuery from ``[(fk_name, child_inst, parent_inst), ...]``."""
    edges = set()
    instances = set()
    for fk_name, child, parent in spec:
        fk = schema.foreign_key(fk_name)
        edges.add(JoinEdge.from_fk(fk, child, parent))
        instances.update((child, parent))
    if not spec:
        instances = set(bindings) or instances
    tree = JoinTree(frozenset(instances), frozenset(edges))
    return BoundQuery.from_mapping(tree, bindings, mode)


@pytest.fixture(scope="module")
def engine(products_db):
    return InMemoryEngine(products_db)


@pytest.fixture(scope="module")
def schema(products_db):
    return products_db.schema


class TestTupleSets:
    def test_scan_matches_keyword(self, engine):
        assert engine.tuple_set("ProductType", "candle", MatchMode.TOKEN) == {1}

    def test_scan_is_cached(self, engine):
        first = engine.tuple_set("Item", "scented", MatchMode.TOKEN)
        assert engine.tuple_set("Item", "scented", MatchMode.TOKEN) is first

    def test_substring_wider_than_token(self, engine):
        token = engine.tuple_set("Item", "scent", MatchMode.TOKEN)
        substring = engine.tuple_set("Item", "scent", MatchMode.SUBSTRING)
        assert token <= substring
        assert substring  # "scented" contains "scent"

    def test_provider_used(self, products_db):
        calls = []

        def provider(relation, keyword, mode):
            calls.append((relation, keyword))
            return {0}

        engine = InMemoryEngine(products_db, tuple_set_provider=provider)
        assert engine.tuple_set("Item", "anything", MatchMode.TOKEN) == {0}
        assert calls == [("Item", "anything")]

    def test_provider_receives_normalized_keyword(self, products_db):
        """Regression: the cache is keyed by the lowercased keyword, so the
        provider must see it lowercased too -- a case-sensitive provider
        would otherwise make the cache first-caller-wins inconsistent."""
        calls = []

        def case_sensitive_provider(relation, keyword, mode):
            calls.append(keyword)
            # Simulates a provider with exact-case postings: only the
            # lowercase spelling has a tuple set.
            return {0} if keyword == "candle" else set()

        engine = InMemoryEngine(
            products_db, tuple_set_provider=case_sensitive_provider
        )
        upper = engine.tuple_set("Item", "CANDLE", MatchMode.TOKEN)
        lower = engine.tuple_set("Item", "candle", MatchMode.TOKEN)
        assert upper == lower == {0}
        assert calls == ["candle"]  # one normalized call, then the cache

    def test_mixed_case_lookups_agree_with_inverted_index(self, products_db):
        """Mixed-case lookups through the real inverted-index provider give
        the same tuple sets as lowercase ones, in either call order."""
        index = InvertedIndex(products_db)
        for first, second in (("Scented", "scented"), ("candle", "CANDLE")):
            engine = InMemoryEngine(products_db, tuple_set_provider=index.provider)
            expected = index.tuple_set("Item", first.lower(), MatchMode.TOKEN)
            assert expected
            assert engine.tuple_set("Item", first, MatchMode.TOKEN) == expected
            assert engine.tuple_set("Item", second, MatchMode.TOKEN) == expected


class TestAliveness:
    def test_single_bound_alive(self, engine, schema):
        query = make_query(schema, [], {inst("ProductType", 1): "candle"})
        assert engine.is_alive(query)

    def test_single_bound_dead(self, engine, schema):
        query = make_query(schema, [], {inst("ProductType", 1): "sofa"})
        assert not engine.is_alive(query)

    def test_single_free_alive(self, engine, schema):
        tree = JoinTree.single(inst("Item", 0))
        assert engine.is_alive(BoundQuery.from_mapping(tree, {}))

    def test_example1_q1_dead(self, engine, schema):
        """P^candle ⋈ I^scented ⋈ C^saffron returns nothing (Example 1)."""
        query = make_query(
            schema,
            [
                ("item_ptype", inst("Item", 2), inst("ProductType", 3)),
                ("item_color", inst("Item", 2), inst("Color", 1)),
            ],
            {
                inst("ProductType", 3): "candle",
                inst("Item", 2): "scented",
                inst("Color", 1): "saffron",
            },
        )
        assert not engine.is_alive(query)

    def test_example1_q2_subquery_alive(self, engine, schema):
        """I^scented ⋈ A^saffron is alive (the saffron scented oil)."""
        query = make_query(
            schema,
            [("item_attr", inst("Item", 2), inst("Attribute", 1))],
            {inst("Item", 2): "scented", inst("Attribute", 1): "saffron"},
        )
        assert engine.is_alive(query)

    def test_null_fk_never_joins(self, engine, schema):
        # Item 1 has color NULL; a join keyed on it must not match.
        query = make_query(
            schema,
            [("item_color", inst("Item", 1), inst("Color", 0))],
            {inst("Item", 1): "oil"},
        )
        # Item 1 is the only 'oil' item and its color is NULL -> dead.
        assert not engine.is_alive(query)

    def test_free_join_alive(self, engine, schema):
        query = make_query(
            schema,
            [("item_ptype", inst("Item", 0), inst("ProductType", 0))],
            {},
        )
        assert engine.is_alive(query)


class TestEvaluate:
    def test_count_matches_enumeration(self, engine, schema):
        query = make_query(
            schema,
            [("item_ptype", inst("Item", 0), inst("ProductType", 1))],
            {inst("ProductType", 1): "candle"},
        )
        rows = engine.evaluate(query, limit=None)
        assert engine.count(query) == len(rows) == 3  # items 2, 3, 4

    def test_limit_respected(self, engine, schema):
        query = make_query(
            schema,
            [("item_ptype", inst("Item", 0), inst("ProductType", 1))],
            {inst("ProductType", 1): "candle"},
        )
        assert len(engine.evaluate(query, limit=2)) == 2

    def test_result_rows_carry_columns(self, engine, schema):
        query = make_query(schema, [], {inst("Color", 1): "saffron"})
        rows = engine.evaluate(query)
        assert rows[0][inst("Color", 1)]["name"] == "saffron"

    def test_dead_query_empty(self, engine, schema):
        query = make_query(schema, [], {inst("Color", 1): "turquoise"})
        assert engine.evaluate(query) == []

    def test_star_join_evaluation(self, engine, schema):
        """Item joined to all three dimension tables at once (branching)."""
        query = make_query(
            schema,
            [
                ("item_ptype", inst("Item", 0), inst("ProductType", 1)),
                ("item_color", inst("Item", 0), inst("Color", 2)),
                ("item_attr", inst("Item", 0), inst("Attribute", 3)),
            ],
            {
                inst("ProductType", 1): "candle",
                inst("Color", 2): "red",
                inst("Attribute", 3): "checkered",
            },
        )
        assert engine.is_alive(query)
        rows = engine.evaluate(query, limit=None)
        assert len(rows) == 1  # item 4: red checkered candle
        assert rows[0][inst("Item", 0)]["name"] == "red checkered candle"

    def test_alive_iff_nonempty(self, engine, schema, products_db):
        index = InvertedIndex(products_db)
        for keyword in ("candle", "saffron", "scented", "red"):
            for relation in index.relations_containing(keyword):
                query = make_query(
                    schema, [], {inst(relation, 1): keyword}
                )
                assert engine.is_alive(query) == bool(engine.evaluate(query))
