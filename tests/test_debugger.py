"""End-to-end tests for the NonAnswerDebugger facade (Example 1 included)."""

import pytest

from repro.core.debugger import NonAnswerDebugger
from repro.relational.predicates import MatchMode

QUERY = "saffron scented candle"


@pytest.fixture(scope="module")
def report(products_debugger):
    return products_debugger.debug(QUERY)


def queries_by_relations(report, relations):
    """The MTN whose bound instances live in exactly ``relations``."""
    found = []
    for query in report.non_answers() + report.answers():
        bound = sorted(i.relation for i, _ in query.bindings)
        if bound == sorted(relations):
            found.append(query)
    return found


class TestExample1:
    """Pins down Example 1 of the paper on the Figure-2 database."""

    def test_q1_is_a_non_answer(self, report):
        (q1,) = queries_by_relations(report, ["Color", "Item", "ProductType"])
        assert q1 in report.non_answers()

    def test_q2_is_a_non_answer(self, report):
        q2_candidates = [
            q
            for q in queries_by_relations(
                report, ["Attribute", "Item", "ProductType"]
            )
            if q.tree.size == 3
        ]
        assert q2_candidates
        for q2 in q2_candidates:
            assert q2 in report.non_answers()

    def test_q1_mpans_match_paper(self, report):
        """MPANs of q1: P^candle ⋈ I^scented, and C^saffron."""
        (q1,) = queries_by_relations(report, ["Color", "Item", "ProductType"])
        explanations = dict(
            (query.describe(), [m.describe() for m in mpans])
            for query, mpans in report.explanations()
        )
        mpans = sorted(explanations[q1.describe()])
        assert mpans == [
            "Color[1]{saffron}",
            "Item[2]{scented} ⋈ ProductType[3]{candle}",
        ]

    def test_q2_mpans_match_paper(self, report):
        """MPANs of q2: P^candle ⋈ I^scented, and I^scented ⋈ A^saffron."""
        q2 = next(
            q
            for q in queries_by_relations(
                report, ["Attribute", "Item", "ProductType"]
            )
            if q.tree.size == 3
        )
        explanations = dict(
            (query.describe(), sorted(m.describe() for m in mpans))
            for query, mpans in report.explanations()
        )
        assert explanations[q2.describe()] == [
            "Attribute[1]{saffron} ⋈ Item[2]{scented}",
            "Item[2]{scented} ⋈ ProductType[3]{candle}",
        ]

    def test_render_mentions_non_answers(self, report):
        text = report.render()
        assert "non-answer queries" in text
        assert "maximal alive sub-query" in text


class TestPipeline:
    def test_timings_populated(self, report):
        timings = report.timings
        assert timings.keyword_mapping >= 0
        assert timings.total >= timings.traversal

    def test_missing_keyword_aborts(self, products_debugger):
        report = products_debugger.debug("saffron sofa")
        assert report.aborted
        assert report.graph is None
        assert report.answers() == []
        assert "sofa" in report.render()

    def test_empty_query(self, products_debugger):
        report = products_debugger.debug("")
        assert report.answers() == []

    def test_all_strategies_same_explanations(self, products_debugger):
        rendered = set()
        for name in ("bu", "td", "buwr", "tdwr", "sbh"):
            report = products_debugger.debug(QUERY, strategy=name)
            rendered.add(
                tuple(
                    (q.describe(), tuple(sorted(m.describe() for m in mpans)))
                    for q, mpans in sorted(
                        report.explanations(), key=lambda pair: pair[0].describe()
                    )
                )
            )
        assert len(rendered) == 1

    def test_retained_nodes_counts_union(self, report):
        assert report.retained_nodes > 0

    def test_witnesses_for_answers(self, products_debugger, report):
        answers = report.answers()
        assert answers
        witnesses = products_debugger.witnesses(answers[0], limit=2)
        assert witnesses
        assert isinstance(witnesses[0], dict)

    def test_sqlite_backend_end_to_end(self, products_db):
        debugger = NonAnswerDebugger(products_db, max_joins=2, backend="sqlite")
        report = debugger.debug(QUERY)
        assert len(report.non_answers()) >= 2
        witnesses = debugger.witnesses(report.answers()[0], limit=1)
        assert witnesses

    def test_unknown_backend_rejected(self, products_db):
        with pytest.raises(ValueError):
            NonAnswerDebugger(products_db, backend="oracle")

    def test_substring_mode_end_to_end(self, products_db):
        debugger = NonAnswerDebugger(products_db, max_joins=2,
                                     mode=MatchMode.SUBSTRING)
        report = debugger.debug("scent candle")
        # 'scent' token-matches nothing but substring-matches 'scented'.
        assert not report.aborted
        assert report.answers()

    def test_token_mode_missing_keyword_aborts(self, products_debugger):
        report = products_debugger.debug("aroma candle")
        assert report.aborted

    def test_mismatched_lattice_rejected(self, products_db, dblife_db):
        from repro.core.lattice import generate_lattice

        foreign = generate_lattice(dblife_db.schema, 1)
        with pytest.raises(ValueError):
            NonAnswerDebugger(products_db, lattice=foreign)
