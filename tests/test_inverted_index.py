"""Unit tests for the inverted index and keyword mapper."""

import pytest

from repro.index.inverted import InvertedIndex
from repro.index.mapper import KeywordMapper
from repro.relational.predicates import MatchMode


class TestInvertedIndex:
    def test_relations_containing(self, products_index):
        assert products_index.relations_containing("saffron") == (
            "Attribute",
            "Color",
            "Item",
        )
        assert products_index.relations_containing("candle") == ("Item", "ProductType")
        assert products_index.relations_containing("scented") == ("Item",)

    def test_missing_keyword(self, products_index):
        assert products_index.relations_containing("sofa") == ()

    def test_tuple_set(self, products_index):
        assert products_index.tuple_set("ProductType", "candle") == {1}
        # saffron appears in Item rows 0 (name) and 2 (description)
        assert products_index.tuple_set("Item", "saffron") == {0, 2}

    def test_tuple_set_substring(self, products_index):
        token = products_index.tuple_set("Item", "scent", MatchMode.TOKEN)
        substring = products_index.tuple_set("Item", "scent", MatchMode.SUBSTRING)
        assert token == frozenset()
        assert substring == {0, 1, 2, 3}

    def test_postings_have_attributes(self, products_index):
        postings = products_index.postings("crimson")
        locations = {(p.relation, p.attribute) for p in postings}
        assert ("Color", "synonyms") in locations
        assert ("Item", "name") in locations

    def test_document_frequency(self, products_index):
        assert products_index.document_frequency("candle") == 4  # 3 items + 1 ptype

    def test_vocabulary(self, products_index):
        assert products_index.vocabulary_size > 20
        assert "saffron" in set(products_index.tokens())

    def test_provider_signature(self, products_index):
        ids = products_index.provider("ProductType", "candle", MatchMode.TOKEN)
        assert ids == {1}


class TestCasefoldMatching:
    """Regression: index and engine agree on full Unicode case folding.

    ``"STRASSE".lower()`` happens to match the casefolded "strasse" token,
    but ``"straße".lower()`` does not -- only ``str.casefold()`` makes the
    uppercase spelling and the sharp-s spelling meet.  A row written one
    way must be found by a keyword written the other way, through both the
    inverted index and the engine's fallback table scan.
    """

    @pytest.fixture()
    def database(self):
        from repro.datasets.products import product_database

        database = product_database()
        database.insert("Color", (50, "STRASSE", "eszett"))
        database.insert("Color", (51, "straße", "sharp s"))
        return database

    def test_index_folds_both_spellings_to_one_token(self, database):
        index = InvertedIndex(database)
        for keyword in ("straße", "STRASSE", "Strasse"):
            assert "Color" in index.relations_containing(keyword), keyword
            ids = index.tuple_set("Color", keyword)
            assert len(ids) == 2, keyword

    def test_engine_matches_via_index_and_via_scan(self, database):
        from repro.relational.engine import InMemoryEngine
        from repro.relational.jointree import BoundQuery, JoinTree, RelationInstance

        instance = RelationInstance("Color", 1)
        probe = BoundQuery.from_mapping(
            JoinTree.single(instance), {instance: "straße"}, MatchMode.TOKEN
        )
        index = InvertedIndex(database)
        with_index = InMemoryEngine(database, tuple_set_provider=index.provider)
        scan_only = InMemoryEngine(database)
        assert with_index.is_alive(probe)
        assert scan_only.is_alive(probe)
        assert with_index.tuple_set("Color", "STRASSE", MatchMode.TOKEN) == (
            scan_only.tuple_set("Color", "STRASSE", MatchMode.TOKEN)
        )


class TestKeywordMapper:
    @pytest.fixture(scope="class")
    def mapper(self, products_index):
        return KeywordMapper(products_index)

    def test_parse_dedupes_and_lowercases(self, mapper):
        assert mapper.parse("Red red CANDLE") == ("red", "candle")

    def test_map_query_complete(self, mapper):
        mapping = mapper.map_query("saffron scented candle")
        assert mapping.complete
        assert mapping.keywords == ("saffron", "scented", "candle")
        assert len(mapping.interpretations) == 3 * 1 * 2

    def test_map_query_missing_keyword(self, mapper):
        mapping = mapper.map_query("saffron sofa")
        assert not mapping.complete
        assert mapping.missing_keywords == ("sofa",)
        assert mapping.interpretations == ()

    def test_mapping_time_recorded(self, mapper):
        assert mapper.map_query("candle").mapping_time >= 0.0

    def test_interpretation_relation_of(self, mapper):
        mapping = mapper.map_query("red candle")
        first = mapping.interpretations[0]
        assert first.relation_of("red") in ("Color", "Item")
        with pytest.raises(KeyError):
            first.relation_of("nope")

    def test_interpretation_cap(self, products_index):
        capped = KeywordMapper(products_index, max_interpretations=2)
        mapping = capped.map_query("saffron scented candle")
        assert len(mapping.interpretations) == 2

    def test_describe(self, mapper):
        mapping = mapper.map_query("saffron sofa")
        text = mapping.describe()
        assert "sofa" in text and "missing" in text
