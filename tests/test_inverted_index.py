"""Unit tests for the inverted index and keyword mapper."""

import pytest

from repro.index.inverted import InvertedIndex
from repro.index.mapper import KeywordMapper
from repro.relational.predicates import MatchMode


class TestInvertedIndex:
    def test_relations_containing(self, products_index):
        assert products_index.relations_containing("saffron") == (
            "Attribute",
            "Color",
            "Item",
        )
        assert products_index.relations_containing("candle") == ("Item", "ProductType")
        assert products_index.relations_containing("scented") == ("Item",)

    def test_missing_keyword(self, products_index):
        assert products_index.relations_containing("sofa") == ()

    def test_tuple_set(self, products_index):
        assert products_index.tuple_set("ProductType", "candle") == {1}
        # saffron appears in Item rows 0 (name) and 2 (description)
        assert products_index.tuple_set("Item", "saffron") == {0, 2}

    def test_tuple_set_substring(self, products_index):
        token = products_index.tuple_set("Item", "scent", MatchMode.TOKEN)
        substring = products_index.tuple_set("Item", "scent", MatchMode.SUBSTRING)
        assert token == frozenset()
        assert substring == {0, 1, 2, 3}

    def test_postings_have_attributes(self, products_index):
        postings = products_index.postings("crimson")
        locations = {(p.relation, p.attribute) for p in postings}
        assert ("Color", "synonyms") in locations
        assert ("Item", "name") in locations

    def test_document_frequency(self, products_index):
        assert products_index.document_frequency("candle") == 4  # 3 items + 1 ptype

    def test_vocabulary(self, products_index):
        assert products_index.vocabulary_size > 20
        assert "saffron" in set(products_index.tokens())

    def test_provider_signature(self, products_index):
        ids = products_index.provider("ProductType", "candle", MatchMode.TOKEN)
        assert ids == {1}


class TestKeywordMapper:
    @pytest.fixture(scope="class")
    def mapper(self, products_index):
        return KeywordMapper(products_index)

    def test_parse_dedupes_and_lowercases(self, mapper):
        assert mapper.parse("Red red CANDLE") == ("red", "candle")

    def test_map_query_complete(self, mapper):
        mapping = mapper.map_query("saffron scented candle")
        assert mapping.complete
        assert mapping.keywords == ("saffron", "scented", "candle")
        assert len(mapping.interpretations) == 3 * 1 * 2

    def test_map_query_missing_keyword(self, mapper):
        mapping = mapper.map_query("saffron sofa")
        assert not mapping.complete
        assert mapping.missing_keywords == ("sofa",)
        assert mapping.interpretations == ()

    def test_mapping_time_recorded(self, mapper):
        assert mapper.map_query("candle").mapping_time >= 0.0

    def test_interpretation_relation_of(self, mapper):
        mapping = mapper.map_query("red candle")
        first = mapping.interpretations[0]
        assert first.relation_of("red") in ("Color", "Item")
        with pytest.raises(KeyError):
            first.relation_of("nope")

    def test_interpretation_cap(self, products_index):
        capped = KeywordMapper(products_index, max_interpretations=2)
        mapping = capped.map_query("saffron scented candle")
        assert len(mapping.interpretations) == 2

    def test_describe(self, mapper):
        mapping = mapper.map_query("saffron sofa")
        text = mapping.describe()
        assert "sofa" in text and "missing" in text
