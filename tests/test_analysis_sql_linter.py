"""SQL linter tests: identifier quoting, SQL001 scanning, prepare dry-runs.

Includes the reserved-word regression: a schema whose relations and columns
are named ``order``/``group``/``limit`` must survive rendering, linting,
and actual execution on the sqlite backend.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    SqlDryRunner,
    find_unquoted_reserved,
    lint_built_lattice,
    lint_ddl,
    lint_lattice_templates,
)
from repro.core.lattice import generate_lattice
from repro.relational.database import Database
from repro.relational.identifiers import (
    is_reserved,
    needs_quoting,
    quote_identifier,
)
from repro.relational.jointree import BoundQuery, JoinEdge, JoinTree, RelationInstance
from repro.relational.predicates import MatchMode
from repro.relational.schema import (
    Attribute,
    AttributeType,
    ForeignKey,
    Relation,
    SchemaGraph,
)
from repro.relational.sql import render_ddl, render_sql, render_template
from repro.relational.sqlite_backend import SqliteEngine


class TestQuoteIdentifier:
    def test_plain_names_unchanged(self):
        assert quote_identifier("Person") == "Person"
        assert quote_identifier("person_id") == "person_id"

    def test_reserved_words_quoted(self):
        assert quote_identifier("order") == '"order"'
        assert quote_identifier("GROUP") == '"GROUP"'
        assert quote_identifier("Limit") == '"Limit"'

    def test_non_identifier_shapes_quoted(self):
        assert quote_identifier("2fast") == '"2fast"'

    def test_predicates(self):
        assert is_reserved("select")
        assert not is_reserved("person")
        assert needs_quoting("index")
        assert not needs_quoting("idx")


@pytest.fixture(scope="module")
def reserved_schema():
    """Relations and columns deliberately named with SQL reserved words."""
    return SchemaGraph.build(
        [
            Relation(
                "order",
                (
                    Attribute("id", AttributeType.INTEGER),
                    Attribute("group", AttributeType.INTEGER),
                    Attribute("limit", AttributeType.TEXT),
                ),
            ),
            Relation(
                "group",
                (
                    Attribute("id", AttributeType.INTEGER),
                    Attribute("select", AttributeType.TEXT),
                ),
            ),
        ],
        [ForeignKey("order_group", "order", "group", "group", "id")],
    )


@pytest.fixture(scope="module")
def reserved_query(reserved_schema):
    fk = reserved_schema.foreign_key("order_group")
    order, group = RelationInstance("order", 1), RelationInstance("group", 2)
    tree = JoinTree(
        frozenset([order, group]), frozenset([JoinEdge.from_fk(fk, order, group)])
    )
    return BoundQuery.from_mapping(
        tree, {group: "vip"}, MatchMode.SUBSTRING
    )


class TestReservedWordSchema:
    def test_ddl_quotes_and_executes(self, reserved_schema):
        statements = render_ddl(reserved_schema)
        assert 'CREATE TABLE "order"' in statements[1]
        assert '"group" INTEGER' in statements[1]
        report = lint_ddl(reserved_schema)
        assert report.ok, "\n" + report.render()

    def test_template_quotes_relations_and_columns(
        self, reserved_schema, reserved_query
    ):
        template = render_template(reserved_query.tree, reserved_schema)
        assert '"order" AS order_1' in template
        assert '"group" AS group_2' in template
        assert 'group_2.id = order_1."group"' in template
        assert find_unquoted_reserved(template) == []

    def test_template_prepares(self, reserved_schema, reserved_query):
        with SqlDryRunner(reserved_schema) as runner:
            template = render_template(reserved_query.tree, reserved_schema)
            assert runner.prepare_error(template) is None

    def test_bound_query_executes_on_sqlite(self, reserved_schema, reserved_query):
        database = Database(reserved_schema)
        database.insert("group", (7, "vip customers"))
        database.insert("order", (1, 7, "rush"))
        engine = SqliteEngine(database)
        try:
            assert engine.is_alive(reserved_query)
            rows = engine.fetch(reserved_query)
            assert rows == [(7, "vip customers", 1, 7, "rush")]
        finally:
            engine.close()

    def test_token_mode_sql_quotes_columns(self, reserved_schema, reserved_query):
        token_query = BoundQuery(
            reserved_query.tree, reserved_query.bindings, MatchMode.TOKEN
        )
        sql = render_sql(token_query, reserved_schema)
        assert "TOKEN_MATCH('vip', group_2.\"select\")" in sql
        assert find_unquoted_reserved(sql) == []

    def test_reserved_lattice_lints_clean(self, reserved_schema):
        lattice = generate_lattice(reserved_schema, max_joins=1)
        report = lint_built_lattice(lattice)
        assert report.ok, "\n" + report.render()


class TestFindUnquotedReserved:
    def test_grammar_keywords_ignored(self):
        sql = "SELECT * FROM Item AS item_1 WHERE 1 = 1"
        assert find_unquoted_reserved(sql) == []

    def test_bare_reserved_identifier_found(self):
        sql = "SELECT * FROM order AS order_1"
        assert find_unquoted_reserved(sql) == ["order"]

    def test_quoted_identifier_ignored(self):
        sql = 'SELECT * FROM "order" AS order_1'
        assert find_unquoted_reserved(sql) == []

    def test_string_literals_ignored(self):
        sql = "SELECT * FROM t WHERE a LIKE '%order by group%'"
        assert find_unquoted_reserved(sql) == []


class TestPrepareDryRun:
    def test_all_products_templates_prepare(self, products_schema):
        lattice = generate_lattice(products_schema, max_joins=2)
        report = lint_lattice_templates(lattice)
        assert report.ok, "\n" + report.render()
        assert len(report) == 0

    def test_broken_template_is_reported(self, products_schema):
        with SqlDryRunner(products_schema) as runner:
            error = runner.prepare_error("SELECT * FROM NoSuchTable")
            assert error is not None
            assert "NoSuchTable" in error

    def test_dry_runner_accepts_token_match(self, products_schema):
        with SqlDryRunner(products_schema) as runner:
            sql = "SELECT 1 FROM Item WHERE TOKEN_MATCH('kw', Item.name)"
            assert runner.prepare_error(sql) is None
