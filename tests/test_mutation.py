"""Tests for per-relation identity: fingerprints, deltas, direction inference."""

from __future__ import annotations

import pytest

from repro.datasets.products import product_database
from repro.relational.database import (
    DatabaseDelta,
    DatabaseSnapshot,
    MutationDirection,
    RelationState,
)
from repro.relational.table import TableError


# ----------------------------------------------------------- table identity
class TestTableFingerprint:
    def test_memoized_until_mutation(self):
        database = product_database()
        table = database.table("Item")
        first = table.fingerprint()
        assert table.fingerprint() == first
        assert table.digest_computations == 1  # second call was the memo
        table.insert(list(table)[0])
        assert table.fingerprint() != first
        assert table.digest_computations == 2

    def test_one_insert_rehashes_only_the_mutated_table(self):
        """The composite must not pay O(data) per mutation: untouched
        tables keep their memoized digest across recomputes."""
        database = product_database()
        database.fingerprint()  # memoize every table once
        before = {
            table.relation.name: table.digest_computations
            for table in database.iter_tables()
        }
        database.insert("Item", list(database.table("Item"))[0])
        database.fingerprint()
        after = {
            table.relation.name: table.digest_computations
            for table in database.iter_tables()
        }
        assert after["Item"] == before["Item"] + 1
        for name in before:
            if name != "Item":
                assert after[name] == before[name], name

    def test_content_identity_ignores_counters(self):
        """Insert-then-delete of the same row restores the fingerprint:
        identity tracks content, the counters only witness direction."""
        database = product_database()
        table = database.table("Item")
        before = table.fingerprint()
        row_id = table.insert(list(table)[0])
        table.delete(row_id)
        assert table.fingerprint() == before
        assert table.inserts_total == len(table) + 1
        assert table.deletes_total == 1

    def test_delete_bounds_checked(self):
        table = product_database().table("Item")
        with pytest.raises(TableError, match="no row"):
            table.delete(len(table))
        removed = table.delete(0)
        assert isinstance(removed, tuple)


# ------------------------------------------------------------------ deltas
def snapshot_of(database):
    return database.snapshot()


class TestDatabaseDelta:
    def test_no_mutation_empty_delta(self):
        database = product_database()
        delta = DatabaseDelta.between(snapshot_of(database), snapshot_of(database))
        assert delta.empty
        assert delta.mutated_relations == frozenset()

    def test_insert_only_direction(self):
        database = product_database()
        old = snapshot_of(database)
        database.insert("Item", list(database.table("Item"))[0])
        delta = DatabaseDelta.between(old, snapshot_of(database))
        assert delta.direction_of("Item") is MutationDirection.INSERT_ONLY
        assert delta.direction_of("Color") is None
        assert delta.mutated_relations == frozenset({"Item"})

    def test_delete_only_direction(self):
        database = product_database()
        old = snapshot_of(database)
        database.delete("Item", 0)
        delta = DatabaseDelta.between(old, snapshot_of(database))
        assert delta.direction_of("Item") is MutationDirection.DELETE_ONLY

    def test_interleaved_mutations_are_mixed(self):
        database = product_database()
        old = snapshot_of(database)
        database.insert("Item", list(database.table("Item"))[0])
        database.delete("Item", 0)
        # Content differs (a different row was removed than inserted) and
        # both counters moved: no single direction explains the change.
        delta = DatabaseDelta.between(old, snapshot_of(database))
        assert delta.direction_of("Item") is MutationDirection.MIXED

    def test_restored_content_absent_even_with_moved_counters(self):
        database = product_database()
        old = snapshot_of(database)
        row_id = database.table("Item").insert(list(database.table("Item"))[0])
        database.delete("Item", row_id)
        delta = DatabaseDelta.between(old, snapshot_of(database))
        assert delta.empty

    def test_cross_lineage_changes_downgrade_to_mixed(self):
        """Counters from a rebuilt database are not comparable: even a
        pure insert cannot be proven insert-only across lineages."""
        first = product_database()
        old = snapshot_of(first)
        rebuilt = product_database()
        rebuilt.insert("Item", list(rebuilt.table("Item"))[0])
        assert old.lineage != rebuilt.snapshot().lineage
        delta = DatabaseDelta.between(old, snapshot_of(rebuilt))
        assert delta.direction_of("Item") is MutationDirection.MIXED

    def test_identical_rebuild_has_empty_delta(self):
        delta = DatabaseDelta.between(
            snapshot_of(product_database()), snapshot_of(product_database())
        )
        assert delta.empty

    def test_unknown_and_dropped_relations_are_mixed(self):
        state = RelationState("R", "fp1", 1, 1, 0)
        other = RelationState("S", "fp2", 1, 1, 0)
        old = DatabaseSnapshot("c1", "lineage", (state,))
        new = DatabaseSnapshot("c2", "lineage", (other,))
        delta = DatabaseDelta.between(old, new)
        # S appeared (unknown history) and R vanished: both are mixed.
        assert delta.direction_of("S") is MutationDirection.MIXED
        assert delta.direction_of("R") is MutationDirection.MIXED

    def test_counter_regression_is_mixed(self):
        """A lower insert counter under the same lineage (impossible for
        a well-behaved Table, possible for a corrupt snapshot) must not
        be read as delete-only."""
        old = DatabaseSnapshot(
            "c1", "lineage", (RelationState("R", "fp1", 5, 9, 0),)
        )
        new = DatabaseSnapshot(
            "c2", "lineage", (RelationState("R", "fp2", 4, 7, 1),)
        )
        delta = DatabaseDelta.between(old, new)
        assert delta.direction_of("R") is MutationDirection.MIXED


# ------------------------------------------------------- composite identity
class TestCompositeFingerprint:
    def test_composite_covers_every_relation(self):
        database = product_database()
        before = database.fingerprint()
        database.insert("Color", (99, "ultraviolet", "uv"))
        after = database.fingerprint()
        assert after != before
        fps = database.relation_fingerprints()
        assert set(fps) == set(database.schema.relations)

    def test_snapshot_is_frozen_against_later_mutations(self):
        database = product_database()
        old = database.snapshot()
        database.insert("Item", list(database.table("Item"))[0])
        new = database.snapshot()
        assert old.composite != new.composite
        assert old.by_relation()["Item"].row_count + 1 == (
            new.by_relation()["Item"].row_count
        )

    def test_database_delete_returns_row_and_updates_identity(self):
        database = product_database()
        before = database.fingerprint()
        removed = database.delete("Item", 0)
        assert isinstance(removed, tuple)
        assert database.fingerprint() != before
