"""Unit tests for SQL text generation (templates and instantiated queries)."""

import pytest

from repro.relational.jointree import BoundQuery, JoinEdge, JoinTree, RelationInstance
from repro.relational.predicates import MatchMode
from repro.relational.sql import (
    KEYWORD_PLACEHOLDER,
    render_ddl,
    render_existence_check,
    render_sql,
    render_template,
)


def inst(relation, copy):
    return RelationInstance(relation, copy)


@pytest.fixture(scope="module")
def schema(products_db):
    return products_db.schema


@pytest.fixture(scope="module")
def two_table_query(schema):
    fk = schema.foreign_key("item_ptype")
    item, ptype = inst("Item", 1), inst("ProductType", 2)
    tree = JoinTree(
        frozenset([item, ptype]),
        frozenset([JoinEdge.from_fk(fk, item, ptype)]),
    )
    return BoundQuery.from_mapping(
        tree, {ptype: "candle"}, MatchMode.SUBSTRING
    )


class TestTemplates:
    def test_template_contains_join_and_placeholder(self, schema, two_table_query):
        template = render_template(two_table_query.tree, schema)
        assert "FROM Item AS item_1, ProductType AS producttype_2" in template
        assert "item_1.ptype = producttype_2.id" in template
        assert KEYWORD_PLACEHOLDER in template

    def test_template_skips_free_instances(self, schema):
        tree = JoinTree.single(inst("Item", 0))
        template = render_template(tree, schema)
        assert KEYWORD_PLACEHOLDER not in template

    def test_single_table_no_conditions(self, schema):
        tree = JoinTree.single(inst("Attribute", 0))
        assert render_template(tree, schema).endswith("WHERE 1 = 1")


class TestRenderSql:
    def test_instantiated_query(self, schema, two_table_query):
        sql = render_sql(two_table_query, schema)
        assert sql.startswith("SELECT *")
        assert "SUBSTRING_MATCH('candle'" in sql
        assert "producttype_2.name" in sql

    def test_existence_check_form(self, schema, two_table_query):
        sql = render_existence_check(two_table_query, schema)
        assert sql.startswith("SELECT 1")
        assert sql.endswith("LIMIT 1")

    def test_token_mode_uses_function(self, schema, two_table_query):
        token_query = BoundQuery(
            two_table_query.tree, two_table_query.bindings, MatchMode.TOKEN
        )
        assert "TOKEN_MATCH" in render_sql(token_query, schema)

    def test_free_query_has_joins_only(self, schema):
        fk = schema.foreign_key("item_color")
        item, color = inst("Item", 0), inst("Color", 0)
        tree = JoinTree(
            frozenset([item, color]), frozenset([JoinEdge.from_fk(fk, item, color)])
        )
        sql = render_sql(BoundQuery.from_mapping(tree, {}), schema)
        assert "LIKE" not in sql and "TOKEN_MATCH" not in sql
        assert "color_0.id = item_0.color" in sql


class TestDdl:
    def test_one_statement_per_relation(self, schema):
        statements = render_ddl(schema)
        assert len(statements) == 4
        assert any("CREATE TABLE Item" in s for s in statements)

    def test_types_rendered(self, schema):
        item = next(s for s in render_ddl(schema) if "Item" in s)
        assert "id INTEGER" in item
        assert "name TEXT" in item
        assert "cost REAL" in item
