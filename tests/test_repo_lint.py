"""The repo AST linter: rule units plus the pytest-collected clean check."""

from pathlib import Path

from repro.analysis.repo_linter import lint_repo, lint_source

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


def codes(source, relative="repro/core/example.py"):
    return [d.code for d in lint_source(source, relative)]


class TestNondeterministicCall:
    def test_time_time_flagged(self):
        source = "import time\n\ndef f() -> float:\n    return time.time()\n"
        assert "LINT001" in codes(source)

    def test_perf_counter_allowed(self):
        source = (
            "import time\n\ndef f() -> float:\n    return time.perf_counter()\n"
        )
        assert "LINT001" not in codes(source)

    def test_global_random_flagged(self):
        source = "import random\n\ndef f() -> int:\n    return random.randint(0, 9)\n"
        assert "LINT001" in codes(source)

    def test_seeded_random_instance_allowed(self):
        source = "import random\n\nrng = random.Random(42)\n"
        assert "LINT001" not in codes(source)

    def test_from_time_import_time_flagged(self):
        assert "LINT001" in codes("from time import time\n")

    def test_from_random_import_flagged(self):
        assert "LINT001" in codes("from random import choice\n")
        assert "LINT001" not in codes("from random import Random\n")

    def test_datetime_now_flagged(self):
        source = "import datetime\n\nstamp = datetime.datetime.now()\n"
        assert "LINT001" in codes(source)

    def test_bench_package_exempt(self):
        source = "import time\n\ndef f() -> float:\n    return time.time()\n"
        assert "LINT001" not in codes(source, relative="repro/bench/tables.py")


class TestMutableDefault:
    def test_list_literal_flagged(self):
        assert "LINT002" in codes("def f(items=[]) -> None:\n    pass\n")

    def test_dict_constructor_flagged(self):
        assert "LINT002" in codes("def f(table=dict()) -> None:\n    pass\n")

    def test_kwonly_default_flagged(self):
        assert "LINT002" in codes("def f(*, items={}) -> None:\n    pass\n")

    def test_none_default_allowed(self):
        assert "LINT002" not in codes("def f(items=None) -> None:\n    pass\n")

    def test_tuple_default_allowed(self):
        assert "LINT002" not in codes("def f(items=()) -> None:\n    pass\n")


class TestMissingAnnotation:
    def test_unannotated_public_function_flagged(self):
        assert "LINT003" in codes("def f(x):\n    return x\n")

    def test_missing_return_flagged(self):
        assert "LINT003" in codes("def f(x: int):\n    return x\n")

    def test_private_function_exempt(self):
        assert "LINT003" not in codes("def _f(x):\n    return x\n")

    def test_self_exempt_in_methods(self):
        source = (
            "class C:\n"
            "    def method(self, x: int) -> int:\n"
            "        return x\n"
        )
        assert "LINT003" not in codes(source)

    def test_only_core_and_relational_packages_checked(self):
        source = "def f(x):\n    return x\n"
        assert "LINT003" not in codes(source, relative="repro/bench/example.py")
        assert "LINT003" in codes(source, relative="repro/relational/example.py")

    def test_unannotated_kwargs_flagged(self):
        source = "def f(**kwargs):\n    return kwargs\n"
        assert "LINT003" in codes(source)


def test_repo_is_lint_clean():
    """The CI gate: the shipped source tree has zero repo-lint findings."""
    report = lint_repo(SRC_ROOT)
    assert report.ok, "\n" + report.render()
    assert len(report) == 0, "\n" + report.render()
