"""The sqlite3 backend must agree with the in-memory engine."""

import pytest

from repro.relational.engine import InMemoryEngine
from repro.relational.jointree import BoundQuery, JoinEdge, JoinTree, RelationInstance
from repro.relational.predicates import MatchMode
from repro.relational.sqlite_backend import SqliteEngine


def inst(relation, copy):
    return RelationInstance(relation, copy)


@pytest.fixture(scope="module")
def sqlite_engine(products_db):
    with SqliteEngine(products_db) as engine:
        yield engine


@pytest.fixture(scope="module")
def memory_engine(products_db):
    return InMemoryEngine(products_db)


def example1_q2(schema, mode=MatchMode.TOKEN):
    item, ptype, attr = inst("Item", 2), inst("ProductType", 3), inst("Attribute", 1)
    tree = JoinTree(
        frozenset([item, ptype, attr]),
        frozenset(
            [
                JoinEdge.from_fk(schema.foreign_key("item_ptype"), item, ptype),
                JoinEdge.from_fk(schema.foreign_key("item_attr"), item, attr),
            ]
        ),
    )
    return BoundQuery.from_mapping(
        tree, {item: "scented", ptype: "candle", attr: "saffron"}, mode
    )


class TestSqliteEngine:
    def test_row_counts_loaded(self, sqlite_engine, products_db):
        for table in products_db.iter_tables():
            count = sqlite_engine.connection.execute(
                f"SELECT COUNT(*) FROM {table.relation.name}"
            ).fetchone()[0]
            assert count == len(table)

    def test_q2_dead_on_both_backends(self, sqlite_engine, memory_engine, products_db):
        query = example1_q2(products_db.schema)
        assert sqlite_engine.is_alive(query) == memory_engine.is_alive(query) is False

    def test_subquery_alive_on_both_backends(
        self, sqlite_engine, memory_engine, products_db
    ):
        query = example1_q2(products_db.schema)
        for subtree in query.tree.child_subtrees():
            sub = query.subquery(subtree)
            assert sqlite_engine.is_alive(sub) == memory_engine.is_alive(sub)

    def test_substring_mode(self, sqlite_engine, products_db):
        query = example1_q2(products_db.schema, MatchMode.SUBSTRING)
        assert not sqlite_engine.is_alive(query)

    def test_count_and_fetch(self, sqlite_engine, products_db):
        schema = products_db.schema
        tree = JoinTree.single(inst("Item", 1))
        query = BoundQuery.from_mapping(tree, {inst("Item", 1): "scented"})
        assert sqlite_engine.count(query) == 4  # item 4: "rose scented" desc
        assert len(sqlite_engine.fetch(query, limit=2)) == 2

    def test_token_match_function_handles_null(self, sqlite_engine):
        # Item 1's color is NULL; TOKEN_MATCH on NULL must not error.
        rows = sqlite_engine.connection.execute(
            "SELECT COUNT(*) FROM Item WHERE TOKEN_MATCH('x', NULL)"
        ).fetchone()
        assert rows[0] == 0

    def test_full_workload_agreement(self, products_debugger, products_db):
        """Every exploration-graph query agrees across backends."""
        memory_engine = InMemoryEngine(products_db)
        report = products_debugger.debug("saffron scented candle")
        with SqliteEngine(products_db) as sqlite_engine:
            for node in report.graph.nodes:
                assert sqlite_engine.is_alive(node.query) == memory_engine.is_alive(
                    node.query
                ), node.query.describe()

    def test_close_releases_connection(self, products_db):
        import sqlite3

        engine = SqliteEngine(products_db)
        engine.close()
        with pytest.raises(sqlite3.ProgrammingError):
            engine.connection.execute("SELECT 1")

    def test_debugger_context_manager_closes_sqlite_backend(self, products_db):
        import sqlite3

        from repro.core.debugger import NonAnswerDebugger

        with NonAnswerDebugger(products_db, backend="sqlite") as debugger:
            report = debugger.debug("red candle")
            assert report.traversal is not None
        with pytest.raises(sqlite3.ProgrammingError):
            debugger.backend.connection.execute("SELECT 1")
