"""Runtime-invariant checking over traces (`repro trace check` core)."""

import json

import pytest

from repro.obs import check_trace_lines, check_trace_records
from repro.obs.invariants import InvariantViolation
from repro.obs.trace import TraceValidationError


def span(seq, *, hit=False, wall=0.0, sim=0.0, tier=None, remaining=None):
    record = {
        "kind": "span",
        "seq": seq,
        "level": 2,
        "keywords": ["a", "b"],
        "backend": "InMemoryEngine",
        "alive": True,
        "cache_hit": hit,
        "wall_seconds": wall,
        "simulated_seconds": sim,
        "cache_tier": tier,
    }
    if remaining is not None:
        record["budget_remaining"] = remaining
    return record


def start(seq, strategy="bu", nodes=10):
    return {
        "kind": "event",
        "seq": seq,
        "name": "traversal_start",
        "strategy": strategy,
        "nodes": nodes,
    }


def end(seq, *, executed, hits=0, exhausted=False):
    return {
        "kind": "event",
        "seq": seq,
        "name": "traversal_end",
        "queries_executed": executed,
        "cache_hits": hits,
        "exhausted": exhausted,
    }


def names(records, **kwargs):
    return [v.invariant for v in check_trace_records(records, **kwargs)]


class TestSpanInvariants:
    def test_clean_segment(self):
        records = [
            start(0),
            span(1, tier="backend", remaining=5),
            span(2, hit=True, tier="l1", remaining=4),
            end(3, executed=1, hits=1),
        ]
        assert names(records) == []

    def test_cache_hit_with_cost_flagged(self):
        records = [span(0, hit=True, wall=0.5, tier="l1")]
        assert names(records) == ["cache-hit-free"]

    def test_cache_hit_with_backend_tier_flagged(self):
        records = [span(0, hit=True, tier="backend")]
        assert names(records) == ["tier-consistency"]

    def test_executed_span_with_cache_tier_flagged(self):
        records = [span(0, hit=False, tier="l2")]
        assert names(records) == ["tier-consistency"]


class TestSegmentInvariants:
    def test_budget_rise_within_segment_flagged(self):
        records = [
            start(0),
            span(1, tier="backend", remaining=5),
            span(2, tier="backend", remaining=7),
            end(3, executed=2),
        ]
        assert names(records) == ["budget-monotone"]

    def test_budget_reset_between_segments_allowed(self):
        records = [
            start(0),
            span(1, tier="backend", remaining=1),
            end(2, executed=1),
            start(3),
            span(4, tier="backend", remaining=9),
            end(5, executed=1),
        ]
        assert names(records) == []

    def test_budget_cap_exceeded_flagged(self):
        records = [
            start(0),
            span(1, tier="backend"),
            span(2, tier="backend"),
            end(3, executed=2),
        ]
        assert names(records, max_queries=1) == ["budget-cap"]
        assert names(records, max_queries=2) == []

    def test_exhausted_event_requires_exhausted_end(self):
        records = [
            start(0),
            span(1, tier="backend"),
            {"kind": "event", "seq": 2, "name": "budget_exhausted"},
            end(3, executed=1, exhausted=False),
        ]
        assert names(records) == ["budget-cap"]

    def test_reuse_strategy_bounded_by_nodes(self):
        records = [
            start(0, strategy="buwr", nodes=2),
            span(1, tier="backend"),
            span(2, tier="backend"),
            span(3, tier="backend"),
            end(4, executed=3),
        ]
        assert names(records) == ["reuse-bound"]

    def test_non_reuse_strategy_may_re_execute(self):
        records = [
            start(0, strategy="bu", nodes=2),
            span(1, tier="backend"),
            span(2, tier="backend"),
            span(3, tier="backend"),
            end(4, executed=3),
        ]
        assert names(records) == []

    def test_end_accounting_mismatch_flagged(self):
        records = [
            start(0),
            span(1, tier="backend"),
            span(2, hit=True, tier="l1"),
            end(3, executed=2, hits=0),
        ]
        assert sorted(names(records)) == [
            "segment-accounting",
            "segment-accounting",
        ]

    def test_unterminated_segment_still_checked(self):
        records = [
            start(0),
            span(1, tier="backend", remaining=3),
            span(2, tier="backend", remaining=4),
        ]
        assert names(records) == ["budget-monotone"]


class TestShardInvariants:
    def test_sharded_segment_exempt_from_reuse_bound(self):
        records = [
            dict(start(0, strategy="buwr", nodes=2), sharded=True),
            span(1),
            span(2),
            span(3),  # 3 executed > 2 nodes: legal when sharded
            end(4, executed=3),
        ]
        assert names(records) == []

    def test_unsharded_reuse_bound_still_enforced(self):
        records = [
            start(0, strategy="buwr", nodes=2),
            span(1),
            span(2),
            span(3),
            end(4, executed=3),
        ]
        assert "reuse-bound" in names(records)

    def shard_plan(self, seq, parent, caps):
        return {
            "kind": "event",
            "seq": seq,
            "name": "shard_plan",
            "parent_max_queries": parent,
            "shard_max_queries": caps,
        }

    def test_caps_within_parent_clean(self):
        assert names([self.shard_plan(0, 10, [4, 3, 3])]) == []

    def test_caps_over_parent_flagged(self):
        violations = check_trace_records([self.shard_plan(0, 10, [6, 6])])
        assert [v.invariant for v in violations] == ["shard-plan-cap"]
        assert "sum to 12" in violations[0].message

    def test_uncapped_shard_under_capped_parent_flagged(self):
        assert names([self.shard_plan(0, 10, [5, None])]) == [
            "shard-plan-cap"
        ]

    def test_unbudgeted_plan_ignored(self):
        record = {
            "kind": "event",
            "seq": 0,
            "name": "shard_plan",
            "parent_max_queries": None,
            "shard_max_queries": [None, None],
        }
        assert names([record]) == []

    def shard_plan_time(self, seq, axis, parent, caps):
        return {
            "kind": "event",
            "seq": seq,
            "name": "shard_plan",
            f"parent_max_{axis}_seconds": parent,
            f"shard_max_{axis}_seconds": caps,
        }

    def test_time_axis_caps_within_parent_clean(self):
        for axis in ("wall", "simulated"):
            record = self.shard_plan_time(0, axis, 0.3, [0.1, 0.1, 0.1])
            assert names([record]) == [], axis

    def test_time_axis_caps_over_parent_flagged(self):
        for axis in ("wall", "simulated"):
            record = self.shard_plan_time(0, axis, 0.3, [0.2, 0.2])
            violations = check_trace_records([record])
            assert [v.invariant for v in violations] == ["shard-plan-cap"], axis
            assert axis in violations[0].message

    def test_time_axis_uncapped_shard_flagged(self):
        record = self.shard_plan_time(0, "wall", 0.3, [0.1, None])
        assert names([record]) == ["shard-plan-cap"]

    def test_time_axis_tolerates_float_rounding(self):
        # Three caps of parent/3 sum to parent only up to representation
        # error; the tolerance must absorb it.
        parent = 0.3
        record = self.shard_plan_time(0, "wall", parent, [parent / 3] * 3)
        assert names([record]) == []

    def test_independent_axes_checked_separately(self):
        record = {
            "kind": "event",
            "seq": 0,
            "name": "shard_plan",
            "parent_max_queries": 10,
            "shard_max_queries": [4, 4],
            "parent_max_wall_seconds": 0.2,
            "shard_max_wall_seconds": [0.3, 0.3],
        }
        violations = check_trace_records([record])
        # The query axis is fine; only the wall axis violates.
        assert [v.invariant for v in violations] == ["shard-plan-cap"]
        assert "wall" in violations[0].message


class TestPoolInvariants:
    def test_unreleased_connections_flagged(self):
        records = [
            {
                "kind": "event",
                "seq": 0,
                "name": "pool_stats",
                "in_use": 2,
                "max_in_use": 3,
                "max_size": 4,
            }
        ]
        assert names(records) == ["pool-release"]

    def test_peak_over_cap_flagged(self):
        records = [
            {
                "kind": "event",
                "seq": 0,
                "name": "pool_stats",
                "in_use": 0,
                "max_in_use": 5,
                "max_size": 4,
            }
        ]
        assert names(records) == ["pool-release"]

    def test_released_pool_clean(self):
        records = [
            {
                "kind": "event",
                "seq": 0,
                "name": "pool_stats",
                "in_use": 0,
                "max_in_use": 4,
                "max_size": 4,
            }
        ]
        assert names(records) == []


def session_event(seq, name, session_id="s1", **attrs):
    record = {
        "kind": "event",
        "seq": seq,
        "name": name,
        "session_id": session_id,
    }
    record.update(attrs)
    return record


class TestSessionInvariants:
    def test_complete_session_clean(self):
        records = [
            session_event(0, "session_submitted", query="q"),
            session_event(1, "session_started"),
            session_event(2, "session_completed"),
        ]
        assert names(records) == []

    def test_submitted_without_terminal_flagged(self):
        records = [
            session_event(0, "session_submitted", query="q"),
            session_event(1, "session_started"),
        ]
        assert names(records) == ["session-terminal"]

    def test_double_terminal_flagged(self):
        records = [
            session_event(0, "session_submitted", query="q"),
            session_event(1, "session_completed"),
            session_event(2, "session_cancelled"),
        ]
        assert names(records) == ["session-terminal"]

    def test_records_after_terminal_flagged(self):
        records = [
            session_event(0, "session_submitted", query="q"),
            session_event(1, "session_completed"),
            session_event(2, "session_started"),
        ]
        assert names(records) == ["session-terminal"]

    def test_every_terminal_name_accepted(self):
        for terminal in (
            "session_completed",
            "session_failed",
            "session_cancelled",
        ):
            records = [
                session_event(0, "session_submitted", query="q"),
                session_event(1, terminal),
            ]
            assert names(records) == [], terminal

    def test_seq_gap_flagged(self):
        records = [
            session_event(0, "session_submitted", query="q"),
            session_event(2, "session_completed"),
        ]
        assert names(records) == ["session-seq"]

    def test_duplicate_seq_flagged(self):
        records = [
            session_event(0, "session_submitted", query="q"),
            session_event(0, "session_started"),
            session_event(1, "session_completed"),
        ]
        assert names(records) == ["session-seq"]

    def test_submitted_stream_must_start_at_zero(self):
        records = [
            session_event(3, "session_submitted", query="q"),
            session_event(4, "session_completed"),
        ]
        assert names(records) == ["session-seq"]

    def test_sessions_checked_independently(self):
        records = [
            session_event(0, "session_submitted", session_id="s1", query="q"),
            session_event(0, "session_submitted", session_id="s2", query="q"),
            session_event(1, "session_completed", session_id="s1"),
            session_event(1, "session_completed", session_id="s2"),
        ]
        assert names(records) == []

    def test_unsessioned_records_exempt(self):
        # Plain pipeline traces carry no session ids and no lifecycle.
        records = [start(0), span(1, tier="backend"), end(2, executed=1)]
        assert names(records) == []


class TestServiceShutdownInvariants:
    def shutdown_event(self, seq, active=0, served=1):
        return {
            "kind": "event",
            "seq": seq,
            "name": "service_shutdown",
            "active_sessions": active,
            "sessions_served": served,
            "drained": True,
        }

    def test_drained_shutdown_clean(self):
        records = [
            session_event(0, "session_submitted", query="q"),
            session_event(1, "session_completed"),
            self.shutdown_event(0),
        ]
        assert names(records) == []

    def test_active_sessions_at_shutdown_flagged(self):
        assert names([self.shutdown_event(0, active=2)]) == [
            "service-shutdown"
        ]

    def test_terminal_after_shutdown_flagged(self):
        records = [
            session_event(0, "session_submitted", query="q"),
            self.shutdown_event(0),
            session_event(1, "session_completed"),
        ]
        assert "service-shutdown" in names(records)


class TestLineInterface:
    def test_lines_are_schema_validated_first(self):
        bad = json.dumps({"kind": "span", "seq": 0})  # missing fields
        with pytest.raises(TraceValidationError):
            check_trace_lines([bad])

    def test_lines_roundtrip(self):
        lines = [
            json.dumps(record)
            for record in [start(0), span(1, tier="backend"), end(2, executed=1)]
        ]
        assert check_trace_lines(lines) == []

    def test_violation_render_carries_seq(self):
        violation = InvariantViolation("budget-cap", 7, "too many probes")
        assert violation.render() == "budget-cap [seq 7]: too many probes"
